(* Tests for Karger's randomized min cut, cross-validated against
   Stoer-Wagner. *)

module Iset = Kfuse_util.Iset
module Rng = Kfuse_util.Rng
module Wgraph = Kfuse_graph.Wgraph
module Karger = Kfuse_graph.Karger
module Sw = Kfuse_graph.Stoer_wagner

let graph edges =
  List.fold_left (fun g (u, v, w) -> Wgraph.add_edge g u v w) Wgraph.empty edges

let test_pair () =
  let rng = Rng.create 1 in
  let w, side = Karger.min_cut rng (graph [ (0, 1, 5.0) ]) in
  Alcotest.check (Helpers.float_close ()) "weight" 5.0 w;
  Alcotest.(check int) "side size" 1 (Iset.cardinal side)

let test_path () =
  let rng = Rng.create 2 in
  let w, _ = Karger.min_cut rng (graph [ (0, 1, 4.0); (1, 2, 1.0); (2, 3, 3.0) ]) in
  Alcotest.check (Helpers.float_close ()) "weak middle edge" 1.0 w

let test_stoer_wagner_example () =
  let g =
    graph
      [
        (1, 2, 2.); (1, 5, 3.); (2, 3, 3.); (2, 5, 2.); (2, 6, 2.); (3, 4, 4.);
        (3, 7, 2.); (4, 7, 2.); (4, 8, 2.); (5, 6, 3.); (6, 7, 1.); (7, 8, 3.);
      ]
  in
  let rng = Rng.create 3 in
  let w, side = Karger.min_cut rng g in
  Alcotest.check (Helpers.float_close ()) "min cut 4" 4.0 w;
  Alcotest.check (Helpers.float_close ()) "side consistent" w (Wgraph.cut_weight g side)

let test_weighted_bias () =
  (* A heavy edge should essentially never be the reported cut when a
     light alternative exists. *)
  let g = graph [ (0, 1, 1000.0); (1, 2, 0.001) ] in
  let rng = Rng.create 4 in
  let w, _ = Karger.min_cut rng g in
  Alcotest.check (Helpers.float_close ~eps:1e-9 ()) "light cut" 0.001 w

let test_matches_stoer_wagner_randomized () =
  (* Random graphs: with the default attempt count, Karger finds the
     Stoer-Wagner optimum. *)
  let rng_graphs = Rng.create 77 in
  for _ = 1 to 30 do
    let n = 2 + Rng.int rng_graphs 6 in
    let g = ref Wgraph.empty in
    for i = 1 to n - 1 do
      g := Wgraph.add_edge !g (Rng.int rng_graphs i) i (0.1 +. Rng.float rng_graphs 5.0)
    done;
    for _ = 1 to n do
      let u = Rng.int rng_graphs n and v = Rng.int rng_graphs n in
      if u <> v then g := Wgraph.add_edge !g u v (0.1 +. Rng.float rng_graphs 5.0)
    done;
    let exact, _ = Sw.min_cut !g in
    let approx, _ = Karger.min_cut (Rng.create 5) !g in
    Alcotest.check (Helpers.float_close ~eps:1e-9 ()) "agrees with Stoer-Wagner" exact
      approx
  done

let test_deterministic_given_seed () =
  let g = graph [ (0, 1, 2.0); (1, 2, 3.0); (2, 0, 1.5); (2, 3, 0.7) ] in
  let a = Karger.min_cut (Rng.create 9) g in
  let b = Karger.min_cut (Rng.create 9) g in
  Alcotest.(check bool) "reproducible" true (a = b)

let test_disconnected () =
  let g = Wgraph.add_vertex (graph [ (0, 1, 3.0) ]) 9 in
  let w, _ = Karger.min_cut (Rng.create 10) g in
  Alcotest.check (Helpers.float_close ()) "zero" 0.0 w

let test_invalid () =
  Helpers.expect_invalid "too small" (fun () ->
      Karger.min_cut (Rng.create 1) (Wgraph.add_vertex Wgraph.empty 1));
  Helpers.expect_invalid "bad attempts" (fun () ->
      Karger.min_cut ~attempts:0 (Rng.create 1) (graph [ (0, 1, 1.0) ]))

let suite =
  [
    Alcotest.test_case "pair" `Quick test_pair;
    Alcotest.test_case "path" `Quick test_path;
    Alcotest.test_case "Stoer-Wagner paper example" `Quick test_stoer_wagner_example;
    Alcotest.test_case "weighted bias" `Quick test_weighted_bias;
    Alcotest.test_case "matches Stoer-Wagner on random graphs" `Slow
      test_matches_stoer_wagner_randomized;
    Alcotest.test_case "deterministic given seed" `Quick test_deterministic_given_seed;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "invalid inputs" `Quick test_invalid;
  ]
