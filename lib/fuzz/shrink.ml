module Iset = Kfuse_util.Iset
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Validate = Kfuse_ir.Validate

let kernels_list (p : Pipeline.t) = Array.to_list p.Pipeline.kernels

(* Rebuild around changed pieces; None when the result is not a
   constructible, validation-clean pipeline (a candidate that broke an
   invariant is simply not a candidate). *)
let rebuild ?width ?height ?inputs ?params (p : Pipeline.t) kernels =
  let width = Option.value ~default:p.Pipeline.width width in
  let height = Option.value ~default:p.Pipeline.height height in
  let inputs = Option.value ~default:p.Pipeline.inputs inputs in
  let params = Option.value ~default:p.Pipeline.params params in
  match
    Pipeline.create ~name:p.Pipeline.name ~width ~height ~channels:p.Pipeline.channels
      ~params ~inputs kernels
  with
  | exception _ -> None
  | q -> if Validate.pipeline q = [] then Some q else None

let with_body (k : Kernel.t) body =
  match Kernel.map ~name:k.Kernel.name ~inputs:(Expr.images body) body with
  | k' -> Some k'
  | exception _ -> None

let with_reduce_arg (k : Kernel.t) arg =
  match k.Kernel.op with
  | Kernel.Map _ -> None
  | Kernel.Reduce { init; combine; _ } -> (
    match Kernel.reduce ~name:k.Kernel.name ~inputs:(Expr.images arg) ~init ~combine arg with
    | k' -> Some k'
    | exception _ -> None)

let kernel_expr (k : Kernel.t) =
  match k.Kernel.op with Kernel.Map e -> e | Kernel.Reduce { arg; _ } -> arg

let set_kernel_expr (k : Kernel.t) e =
  match k.Kernel.op with Kernel.Map _ -> with_body k e | Kernel.Reduce _ -> with_reduce_arg k e

let children e =
  match e with
  | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ -> []
  | Expr.Let { value; body; _ } -> [ body; value ]
  | Expr.Unop (_, a) -> [ a ]
  | Expr.Binop (_, a, b) -> [ a; b ]
  | Expr.Select { lhs; rhs; if_true; if_false; _ } -> [ if_true; if_false; lhs; rhs ]
  | Expr.Shift { body; _ } -> [ body ]

(* ---- candidate moves; each returns a lazy list of pipelines ---- *)

let drop_sinks p () =
  let n = Pipeline.num_kernels p in
  if n < 2 then []
  else
    List.filter_map
      (fun i ->
        if Iset.is_empty (Pipeline.consumers p i) then
          rebuild p
            (List.filteri (fun j _ -> j <> i) (kernels_list p))
        else None)
      (List.init n Fun.id)

(* Rewire every consumer tap of kernel [i]'s image either to one of the
   kernel's own inputs (keeping offset and border) or, when it reads
   nothing, to a constant — then drop the kernel. *)
let bypass p () =
  let n = Pipeline.num_kernels p in
  if n < 2 then []
  else
    List.filter_map
      (fun i ->
        let k = Pipeline.kernel p i in
        if Iset.is_empty (Pipeline.consumers p i) then None
        else begin
          let target = k.Kernel.name in
          let repl = List.nth_opt k.Kernel.inputs 0 in
          let rewrite e =
            Expr.subst_inputs
              (fun ~image ~dx ~dy ~border ->
                if image = target then
                  match repl with
                  | Some r -> Expr.Input { image = r; dx; dy; border }
                  | None -> Expr.const 0.5
                else Expr.Input { image; dx; dy; border })
              e
          in
          let kernels =
            List.filteri (fun j _ -> j <> i) (kernels_list p)
            |> List.map (fun (k' : Kernel.t) ->
                   set_kernel_expr k' (rewrite (kernel_expr k')))
          in
          if List.for_all Option.is_some kernels then
            rebuild p (List.map Option.get kernels)
          else None
        end)
      (List.init n Fun.id)

let shrink_bodies p () =
  List.concat_map
    (fun i ->
      let k = Pipeline.kernel p i in
      children (kernel_expr k)
      |> List.filter_map (fun sub ->
             if Expr.free_vars sub <> [] then None
             else
               Option.bind (set_kernel_expr k sub) (fun k' ->
                   rebuild p
                     (List.mapi
                        (fun j old -> if j = i then k' else old)
                        (kernels_list p)))))
    (List.init (Pipeline.num_kernels p) Fun.id)

let inline_params (p : Pipeline.t) () =
  if p.Pipeline.params = [] then []
  else begin
    let value name = List.assoc name p.Pipeline.params in
    let rec subst e =
      match e with
      | Expr.Param name -> Expr.const (value name)
      | Expr.Const _ | Expr.Input _ | Expr.Var _ -> e
      | Expr.Let { var; value = v; body } -> Expr.Let { var; value = subst v; body = subst body }
      | Expr.Unop (op, a) -> Expr.Unop (op, subst a)
      | Expr.Binop (op, a, b) -> Expr.Binop (op, subst a, subst b)
      | Expr.Select { cmp; lhs; rhs; if_true; if_false } ->
        Expr.Select
          {
            cmp;
            lhs = subst lhs;
            rhs = subst rhs;
            if_true = subst if_true;
            if_false = subst if_false;
          }
      | Expr.Shift { dx; dy; exchange; body } -> Expr.Shift { dx; dy; exchange; body = subst body }
    in
    let kernels =
      List.map (fun k -> set_kernel_expr k (subst (kernel_expr k))) (kernels_list p)
    in
    if List.for_all Option.is_some kernels then
      match rebuild ~params:[] p (List.map Option.get kernels) with
      | Some q -> [ q ]
      | None -> []
    else []
  end

let drop_unused_inputs (p : Pipeline.t) () =
  let read img =
    List.exists (fun k -> List.mem img (Expr.images (kernel_expr k))) (kernels_list p)
  in
  let used, unused = List.partition read p.Pipeline.inputs in
  if unused = [] then []
  else
    (* Keep at least one declared input so the shrunk pipeline stays in
       the shape everything downstream (DSL, CLI) expects. *)
    let inputs = if used = [] then [ List.hd p.Pipeline.inputs ] else used in
    if inputs = p.Pipeline.inputs then []
    else match rebuild ~inputs p (kernels_list p) with Some q -> [ q ] | None -> []

let halve_extent (p : Pipeline.t) () =
  let w = max 7 (p.Pipeline.width / 2) and h = max 7 (p.Pipeline.height / 2) in
  if w = p.Pipeline.width && h = p.Pipeline.height then []
  else match rebuild ~width:w ~height:h p (kernels_list p) with Some q -> [ q ] | None -> []

let halve_offsets p () =
  let total = ref 0 in
  let halve e =
    Expr.subst_inputs
      (fun ~image ~dx ~dy ~border ->
        total := !total + abs dx + abs dy;
        Expr.Input { image; dx = dx / 2; dy = dy / 2; border })
      e
  in
  let kernels =
    List.map (fun k -> set_kernel_expr k (halve (kernel_expr k))) (kernels_list p)
  in
  if !total = 0 || not (List.for_all Option.is_some kernels) then []
  else
    match rebuild p (List.map Option.get kernels) with Some q -> [ q ] | None -> []

let moves = [ drop_sinks; bypass; shrink_bodies; inline_params; drop_unused_inputs; halve_extent; halve_offsets ]

let run ?(max_attempts = 1000) ~still_fails p0 =
  let attempts = ref 0 in
  let rec improve p =
    let next =
      List.find_map
        (fun move ->
          List.find_opt
            (fun q ->
              !attempts < max_attempts
              && begin
                   incr attempts;
                   still_fails q
                 end)
            (move p ()))
        moves
    in
    match next with
    | Some q when !attempts <= max_attempts -> improve q
    | _ -> p
  in
  improve p0
