module Diag = Kfuse_util.Diag

type input = {
  name : string;
  width : int;
  height : int;
  channels : int;
  inputs : string list;
  params : (string * float) list;
  kernels : Kernel.t list;
}

let of_pipeline (p : Pipeline.t) =
  {
    name = p.Pipeline.name;
    width = p.Pipeline.width;
    height = p.Pipeline.height;
    channels = p.Pipeline.channels;
    inputs = p.Pipeline.inputs;
    params = p.Pipeline.params;
    kernels = Array.to_list p.Pipeline.kernels;
  }

let check_space t =
  let bad what v =
    Diag.errorf Diag.Empty_iteration_space
      "pipeline %S: empty iteration space (%s = %d, must be positive)" t.name what v
  in
  (if t.width <= 0 then [ bad "width" t.width ] else [])
  @ (if t.height <= 0 then [ bad "height" t.height ] else [])
  @ if t.channels <= 0 then [ bad "channels" t.channels ] else []

(* Duplicate identifiers: kernel names must be unique and disjoint from
   input names; parameters share the reference namespace with images. *)
let check_names t =
  let seen = Hashtbl.create 16 in
  let diags = ref [] in
  let declare kind name =
    (match Hashtbl.find_opt seen name with
    | Some prior ->
      diags :=
        Diag.errorf Diag.Duplicate_name "pipeline %S: %s %S clashes with %s of the same name"
          t.name kind name prior
        :: !diags
    | None -> ());
    Hashtbl.replace seen name kind
  in
  List.iter (declare "input") t.inputs;
  List.iter (fun (k : Kernel.t) -> declare "kernel" k.Kernel.name) t.kernels;
  List.iter (fun (p, _) -> declare "parameter" p) t.params;
  List.rev !diags

let check_refs t =
  let produced = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace produced i ()) t.inputs;
  List.iter (fun (k : Kernel.t) -> Hashtbl.replace produced k.Kernel.name ()) t.kernels;
  List.concat_map
    (fun (k : Kernel.t) ->
      List.filter_map
        (fun img ->
          if Hashtbl.mem produced img then None
          else
            Some
              (Diag.errorf Diag.Dangling_ref
                 "pipeline %S: kernel %S reads image %S, which no input or kernel produces"
                 t.name k.Kernel.name img))
        k.Kernel.inputs)
    t.kernels

let check_params t =
  List.concat_map
    (fun (k : Kernel.t) ->
      List.filter_map
        (fun p ->
          if List.mem_assoc p t.params then None
          else
            Some
              (Diag.errorf Diag.Unbound_param
                 "pipeline %S: kernel %S uses parameter %S with no declared default" t.name
                 k.Kernel.name p))
        (Expr.params
           (match k.Kernel.op with Kernel.Map e -> e | Kernel.Reduce { arg; _ } -> arg)))
    t.kernels

(* Cycle detection over the kernel-name dependence graph with a 3-color
   DFS; [Pipeline.create] would also refuse, but here we report the
   actual kernel path as a diagnostic instead of raising. *)
let check_cycles t =
  let kernels = Array.of_list t.kernels in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i (k : Kernel.t) -> Hashtbl.replace index k.Kernel.name i) kernels;
  let deps i =
    List.filter_map (fun img -> Hashtbl.find_opt index img) kernels.(i).Kernel.inputs
  in
  let n = Array.length kernels in
  let color = Array.make n `White in
  let cycle = ref None in
  let rec dfs path i =
    match color.(i) with
    | `Black -> ()
    | `Gray ->
      if !cycle = None then begin
        let rec cut = function
          | [] -> []
          | j :: rest -> if j = i then [ j ] else j :: cut rest
        in
        cycle := Some (List.rev (i :: cut path))
      end
    | `White ->
      color.(i) <- `Gray;
      List.iter (dfs (i :: path)) (deps i);
      color.(i) <- `Black
  in
  for i = 0 to n - 1 do
    dfs [] i
  done;
  match !cycle with
  | None -> []
  | Some path ->
    [
      Diag.errorf Diag.Cycle "pipeline %S: dependence cycle through kernels %s" t.name
        (String.concat " -> "
           (List.map (fun i -> kernels.(i).Kernel.name) path));
    ]

let check_headers t =
  let index = Hashtbl.create 16 in
  List.iter (fun (k : Kernel.t) -> Hashtbl.replace index k.Kernel.name k) t.kernels;
  List.concat_map
    (fun (k : Kernel.t) ->
      List.filter_map
        (fun img ->
          match Hashtbl.find_opt index img with
          | Some producer when Kernel.is_global producer ->
            Some
              (Diag.errorf Diag.Global_consumed
                 "pipeline %S: kernel %S consumes the 1x1 output of global kernel %S \
                  (not header-compatible with the %dx%d iteration space)"
                 t.name k.Kernel.name img t.width t.height)
          | _ -> None)
        k.Kernel.inputs)
    t.kernels

let check_masks t =
  if t.width <= 0 || t.height <= 0 then []
  else
    List.filter_map
      (fun (k : Kernel.t) ->
        let side = Kernel.mask_width k in
        if side > t.width || side > t.height then
          Some
            (Diag.errorf Diag.Mask_too_large
               "pipeline %S: kernel %S has a %dx%d stencil window, larger than the %dx%d \
                iteration space"
               t.name k.Kernel.name side side t.width t.height)
        else None)
      t.kernels

let check t =
  let structural = check_space t @ check_names t @ check_refs t @ check_params t in
  let empty =
    if t.kernels = [] then
      [
        Diag.warningf Diag.Empty_pipeline "pipeline %S has no kernels: nothing to fuse"
          t.name;
      ]
    else []
  in
  (* Cycle/header checks assume identifiable kernels; skip them when the
     naming or reference structure is already broken so one root cause
     is not reported twice. *)
  let graph_checks =
    if structural = [] then check_cycles t @ check_headers t @ check_masks t else []
  in
  structural @ empty @ graph_checks

let errors t = List.filter Diag.is_error (check t)

let pipeline p = check (of_pipeline p)

let result p = match List.filter Diag.is_error (pipeline p) with [] -> Ok p | d :: _ -> Error d

let build t =
  match errors t with
  | d :: _ -> Error d
  | [] -> (
    match
      Pipeline.create ~name:t.name ~width:t.width ~height:t.height ~channels:t.channels
        ~params:t.params ~inputs:t.inputs t.kernels
    with
    | p -> Ok p
    | exception Invalid_argument msg -> Error (Diag.v Diag.Internal_error msg))
