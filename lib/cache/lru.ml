type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* toward MRU *)
  mutable next : 'a node option;  (* toward LRU *)
}

type 'a t = {
  tbl : (string, 'a node) Hashtbl.t;
  capacity : int;
  mutable head : 'a node option;  (* MRU *)
  mutable tail : 'a node option;  (* LRU *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type counters = { hits : int; misses : int; evictions : int }

let create ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    tbl = Hashtbl.create (min capacity 64);
    capacity;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some n ->
    t.hits <- t.hits + 1;
    unlink t n;
    push_front t n;
    Some n.value

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl key

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl n.key;
    t.evictions <- t.evictions + 1

let put t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
    n.value <- value;
    unlink t n;
    push_front t n
  | None ->
    if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
    let n = { key; value; prev = None; next = None } in
    Hashtbl.replace t.tbl key n;
    push_front t n

let length t = Hashtbl.length t.tbl
let capacity t = t.capacity

let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head

let counters (t : 'a t) = { hits = t.hits; misses = t.misses; evictions = t.evictions }

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None
