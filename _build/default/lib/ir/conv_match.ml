module Border = Kfuse_image.Border

type stencil = {
  image : string;
  border : Border.mode;
  taps : ((int * int) * float) list;
}

type factorization = {
  horizontal : (int * float) list;
  vertical : (int * float) list;
}

exception No_match

let extract e =
  (* Flatten the + tree into terms; recognize each term as coeff * tap. *)
  let rec terms acc e =
    match e with
    | Expr.Binop (Expr.Add, a, b) -> terms (terms acc a) b
    | _ -> e :: acc
  in
  let tap_of_term = function
    | Expr.Input { image; dx; dy; border } -> (image, border, (dx, dy), 1.0)
    | Expr.Binop (Expr.Mul, Expr.Const c, Expr.Input { image; dx; dy; border })
    | Expr.Binop (Expr.Mul, Expr.Input { image; dx; dy; border }, Expr.Const c) ->
      (image, border, (dx, dy), c)
    | _ -> raise No_match
  in
  try
    match List.rev_map tap_of_term (terms [] e) with
    | [] -> None
    | (image, border, off0, c0) :: rest ->
      let add taps off c =
        match List.assoc_opt off taps with
        | Some prev -> (off, prev +. c) :: List.remove_assoc off taps
        | None -> (off, c) :: taps
      in
      let taps =
        List.fold_left
          (fun taps (img, b, off, c) ->
            if String.equal img image && Border.equal b border then add taps off c
            else raise No_match)
          [ (off0, c0) ] rest
      in
      Some { image; border; taps = List.sort compare taps }
  with No_match -> None

let tap_count s = List.length (List.filter (fun (_, c) -> not (Float.equal c 0.0)) s.taps)

let separate ?(tolerance = 1e-9) s =
  match s.taps with
  | [] -> None
  | _ ->
    let xs = List.map (fun ((dx, _), _) -> dx) s.taps in
    let ys = List.map (fun ((_, dy), _) -> dy) s.taps in
    let x0 = List.fold_left min (List.hd xs) xs and x1 = List.fold_left max (List.hd xs) xs in
    let y0 = List.fold_left min (List.hd ys) ys and y1 = List.fold_left max (List.hd ys) ys in
    let w dx dy = match List.assoc_opt (dx, dy) s.taps with Some c -> c | None -> 0.0 in
    let scale =
      List.fold_left (fun acc (_, c) -> Float.max acc (Float.abs c)) 0.0 s.taps
    in
    if scale = 0.0 then None
    else begin
      (* Pivot: the entry with the largest magnitude. *)
      let (px, py), pv =
        List.fold_left
          (fun ((_, bv) as best) (off, c) ->
            if Float.abs c > Float.abs bv then (off, c) else best)
          (List.hd s.taps) s.taps
      in
      (* Candidate factors: the pivot's column as the vertical factor and
         its (pivot-normalized) row as the horizontal one. *)
      let vertical_of dy = w px dy in
      let horizontal_of dx = w dx py /. pv in
      let rank1 = ref true in
      for dy = y0 to y1 do
        for dx = x0 to x1 do
          let predicted = vertical_of dy *. horizontal_of dx in
          if Float.abs (predicted -. w dx dy) > tolerance *. scale then rank1 := false
        done
      done;
      if not !rank1 then None
      else begin
        let nonzero lo hi f =
          List.filter_map
            (fun i -> if Float.abs (f i) > 0.0 then Some (i, f i) else None)
            (List.init (hi - lo + 1) (fun k -> lo + k))
        in
        Some
          {
            horizontal = nonzero x0 x1 horizontal_of;
            vertical = nonzero y0 y1 vertical_of;
          }
      end
    end
