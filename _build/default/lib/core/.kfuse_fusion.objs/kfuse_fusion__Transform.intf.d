lib/core/transform.mli: Kfuse_graph Kfuse_ir Kfuse_util
