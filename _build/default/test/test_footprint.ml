(* Tests for the rectangular footprint analysis. *)

module Fp = Kfuse_ir.Footprint
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Cost = Kfuse_ir.Cost
module Mask = Kfuse_image.Mask

let window = Alcotest.testable Fp.pp Fp.equal

let test_constructors () =
  Alcotest.check window "radius 0 = point" Fp.point (Fp.of_radius 0);
  Alcotest.check window "radius 2"
    (Fp.make ~dx_min:(-2) ~dx_max:2 ~dy_min:(-2) ~dy_max:2)
    (Fp.of_radius 2);
  Helpers.expect_invalid "empty window" (fun () ->
      Fp.make ~dx_min:1 ~dx_max:0 ~dy_min:0 ~dy_max:0);
  Helpers.expect_invalid "negative radius" (fun () -> Fp.of_radius (-1))

let test_geometry () =
  let w = Fp.make ~dx_min:(-2) ~dx_max:1 ~dy_min:0 ~dy_max:0 in
  Alcotest.(check int) "width" 4 (Fp.width w);
  Alcotest.(check int) "height" 1 (Fp.height w);
  Alcotest.(check int) "area" 4 (Fp.area w);
  Alcotest.(check int) "radius" 2 (Fp.radius w);
  Alcotest.(check bool) "not point" false (Fp.is_point w);
  Alcotest.(check bool) "point is point" true (Fp.is_point Fp.point)

let test_union_sum () =
  let a = Fp.make ~dx_min:(-1) ~dx_max:0 ~dy_min:0 ~dy_max:2 in
  let b = Fp.make ~dx_min:0 ~dx_max:3 ~dy_min:(-1) ~dy_max:0 in
  Alcotest.check window "union"
    (Fp.make ~dx_min:(-1) ~dx_max:3 ~dy_min:(-1) ~dy_max:2)
    (Fp.union a b);
  Alcotest.check window "minkowski sum"
    (Fp.make ~dx_min:(-1) ~dx_max:3 ~dy_min:(-1) ~dy_max:2)
    (Fp.sum a b);
  (* Eq. 9 in window form: radius r1 + r2 squares. *)
  Alcotest.check window "eq9" (Fp.of_radius 3) (Fp.sum (Fp.of_radius 1) (Fp.of_radius 2))

let test_of_expr () =
  let open Expr in
  let e = input ~dx:(-1) "a" + (input ~dx:2 ~dy:1 "a" * input "b") in
  match Fp.of_expr e with
  | [ ("a", wa); ("b", wb) ] ->
    Alcotest.check window "a" (Fp.make ~dx_min:(-1) ~dx_max:2 ~dy_min:0 ~dy_max:1) wa;
    Alcotest.check window "b" Fp.point wb
  | other -> Alcotest.failf "unexpected: %d entries" (List.length other)

let test_of_expr_shift () =
  let open Expr in
  let e = Shift { dx = 3; dy = -2; exchange = None; body = input ~dx:(-1) "a" } in
  match Fp.of_expr e with
  | [ ("a", w) ] ->
    Alcotest.check window "composed" (Fp.make ~dx_min:2 ~dx_max:2 ~dy_min:(-2) ~dy_max:(-2)) w
  | _ -> Alcotest.fail "expected one image"

let test_horizontal_blur_tile () =
  (* A 1-D horizontal blur needs no vertical halo: its tile is smaller
     than the square-radius estimate. *)
  let expected_horizontal = (32 + 4) * 4 * 4 in
  let expected_square = (32 + 4) * (4 + 4) * 4 in
  let horiz =
    let open Expr in
    Kernel.map ~name:"h" ~inputs:[ "a" ]
      ((input ~dx:(-2) "a" + input "a") + input ~dx:2 "a")
  in
  let square = Kernel.map ~name:"s" ~inputs:[ "a" ] (Expr.conv Mask.gaussian_5x5 "a") in
  let block = Cost.default_block in
  let h_bytes = Cost.kernel_shared_bytes block horiz in
  let s_bytes = Cost.kernel_shared_bytes block square in
  Alcotest.(check int) "horizontal tile" expected_horizontal h_bytes;
  Alcotest.(check int) "square tile" expected_square s_bytes;
  Alcotest.(check bool) "tighter" true (h_bytes < s_bytes)

let test_separable_blur_legality () =
  (* Separable Gaussian (horizontal then vertical 1-D): the window model
     accumulates a cross-shaped footprint tighter than two squares, so
     the fused tile estimate stays moderate. *)
  let module F = Kfuse_fusion in
  let horiz =
    let open Expr in
    Kernel.map ~name:"h" ~inputs:[ "in" ]
      ((Const 0.25 * input ~dx:(-1) "in") + (Const 0.5 * input "in")
      + (Const 0.25 * input ~dx:1 "in"))
  in
  let vert =
    let open Expr in
    Kernel.map ~name:"v" ~inputs:[ "h" ]
      ((Const 0.25 * input ~dy:(-1) "h") + (Const 0.5 * input "h")
      + (Const 0.25 * input ~dy:1 "h"))
  in
  let p =
    Kfuse_ir.Pipeline.create ~name:"sep" ~width:64 ~height:64 ~inputs:[ "in" ]
      [ horiz; vert ]
  in
  let config = F.Config.default in
  let fused = F.Legality.fused_shared_bytes config p (Helpers.set_of [ 0; 1 ]) in
  (* in-tile: horizontal window [-1,1]x{0} extended by v's {0}x[-1,1]
     downstream = [-1,1]x[-1,1]; h-tile: {0}x[-1,1]. *)
  let block = config.F.Config.block in
  let expected =
    Cost.tile_bytes_window block (Fp.of_radius 1)
    + Cost.tile_bytes_window block (Fp.make ~dx_min:0 ~dx_max:0 ~dy_min:(-1) ~dy_max:1)
  in
  Alcotest.(check int) "separable accumulation" expected fused

let test_footprint_radius_consistent () =
  (* Footprint radius equals the scalar Expr.radius on arbitrary bodies. *)
  let bodies =
    let open Expr in
    [
      input "a";
      conv Mask.gaussian_5x5 "a";
      input ~dx:(-3) "a" + input ~dy:2 "a";
      Shift { dx = 1; dy = 1; exchange = None; body = conv Mask.gaussian_3x3 "a" };
    ]
  in
  List.iter
    (fun e ->
      let max_w =
        List.fold_left (fun acc (_, w) -> max acc (Fp.radius w)) 0 (Fp.of_expr e)
      in
      Alcotest.(check int) "radius agreement" (Expr.radius e) max_w)
    bodies

let suite =
  [
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "geometry" `Quick test_geometry;
    Alcotest.test_case "union and Minkowski sum" `Quick test_union_sum;
    Alcotest.test_case "of_expr" `Quick test_of_expr;
    Alcotest.test_case "of_expr composes shifts" `Quick test_of_expr_shift;
    Alcotest.test_case "1-D blur gets a tighter tile" `Quick test_horizontal_blur_tile;
    Alcotest.test_case "separable blur legality" `Quick test_separable_blur_legality;
    Alcotest.test_case "radius consistency" `Quick test_footprint_radius_consistent;
  ]
