module Diag = Kfuse_util.Diag
module Deadline = Kfuse_util.Deadline
module Faults = Kfuse_util.Faults
module Fingerprint = Kfuse_cache.Fingerprint
module Pipeline = Kfuse_ir.Pipeline

(* {1 Sandbox policy} *)

type policy = Sandboxed | Dlopen_trusted | Unsandboxed

let policy_to_string = function
  | Sandboxed -> "on"
  | Dlopen_trusted -> "dlopen-trusted"
  | Unsandboxed -> "off"

let policy_of_string = function
  | "on" -> Some Sandboxed
  | "dlopen-trusted" -> Some Dlopen_trusted
  | "off" -> Some Unsandboxed
  | _ -> None

(* {1 Resource limits} *)

type limits = {
  wall_ms : float option;
  cpu_s : int option;
  mem_bytes : int option;
  fsize_bytes : int option;
}

let no_limits = { wall_ms = None; cpu_s = None; mem_bytes = None; fsize_bytes = None }

let default_limits =
  {
    wall_ms = Some 30_000.;
    cpu_s = Some 60;
    mem_bytes = Some (2 * 1024 * 1024 * 1024);
    fsize_bytes = Some (256 * 1024 * 1024);
  }

(* {1 Outcome} *)

type failure =
  | Timeout of { wall_ms : float; escalated : bool }
  | Crashed of { signal : string }
  | Limit of { what : string; signal : string }
  | Nonzero_exit of { code : int }
  | Spawn_failed of { reason : string }

type run = {
  status : (unit, failure) result;
  wall_ms : float;
  stderr_tail : string;
}

let signal_name s =
  let names =
    [
      (Sys.sigsegv, "SIGSEGV"); (Sys.sigbus, "SIGBUS"); (Sys.sigfpe, "SIGFPE");
      (Sys.sigill, "SIGILL"); (Sys.sigabrt, "SIGABRT"); (Sys.sigterm, "SIGTERM");
      (Sys.sigkill, "SIGKILL"); (Sys.sigint, "SIGINT"); (Sys.sigpipe, "SIGPIPE");
      (Sys.sigquit, "SIGQUIT"); (Sys.sigxcpu, "SIGXCPU"); (Sys.sigxfsz, "SIGXFSZ");
      (Sys.sigtrap, "SIGTRAP"); (Sys.sighup, "SIGHUP"); (Sys.sigusr1, "SIGUSR1");
      (Sys.sigusr2, "SIGUSR2");
    ]
  in
  match List.assoc_opt s names with
  | Some n -> n
  | None -> Printf.sprintf "signal %d" s

(* Bound every captured stderr tail before it is embedded in a KF09xx
   diagnostic: diagnostics travel over the 16 MiB-capped wire protocol,
   and a misbehaving child can write arbitrarily much. *)
let stderr_tail_limit = 4096

let read_tail ?(limit = stderr_tail_limit) path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        let n = in_channel_length ic in
        let keep = min n limit in
        seek_in ic (n - keep);
        let s = really_input_string ic keep in
        if keep < n then "[... truncated ...]\n" ^ s else s)

(* {1 Chaos misbehaviour (exec.* fault points)} *)

type misbehave = No_fault | Fault_crash | Fault_hang | Fault_oom

(* {1 Spawn + watchdog} *)

(* The whole fork/dup2/setrlimit/exec sequence lives in a C stub
   ([kfuse_spawn] in kfuse_exec_stubs.c): OCaml 5 forbids [Unix.fork]
   once other domains exist — and both kfused's fusion pool and the
   test runner create domains — while a C-side fork whose child runs
   only async-signal-safe libc calls and never re-enters the OCaml
   runtime is fine.  The chaos misbehaviours execute in the child, so
   they are implemented in the stub too ([Fault_crash] = die with
   SIGSEGV, [Fault_hang] = pause forever, [Fault_oom] = exhaust a
   64 MiB private RLIMIT_AS and abort() the way the generated
   kf_malloc does); the *decision* of which one fires is still drawn
   in the parent (see [run]), because the Faults registry holds a
   mutex.  Limits are [RLIMIT_CPU (s); RLIMIT_AS; RLIMIT_FSIZE], -1
   for unlimited.  Returns the child pid; raises [Failure] when the
   fork itself fails. *)
external raw_spawn :
  string array ->
  Unix.file_descr * Unix.file_descr * Unix.file_descr ->
  int array ->
  int ->
  int = "kfuse_spawn"

let misbehave_code = function
  | No_fault -> 0
  | Fault_crash -> 1
  | Fault_hang -> 2
  | Fault_oom -> 3

let spawn ~limits ~misbehave ~stdout_fd ~stderr_fd ~devnull argv =
  match argv with
  | [] -> Error "empty argv"
  | _ -> (
    let lim = function None -> -1 | Some v -> v in
    let lims = [| lim limits.cpu_s; lim limits.mem_bytes; lim limits.fsize_bytes |] in
    match
      raw_spawn (Array.of_list argv)
        (devnull, stdout_fd, stderr_fd)
        lims (misbehave_code misbehave)
    with
    | pid -> Ok pid
    | exception Failure reason -> Error reason)

(* Wait for [pid], killing it when [wall_ms] elapses: SIGTERM first,
   SIGKILL after [grace_ms] if it refuses to die.  Returns the status,
   the observed wall time, and whether the watchdog fired/escalated. *)
let wait_with_watchdog ~pid ~wall_ms ~grace_ms =
  let t0 = Unix.gettimeofday () in
  match wall_ms with
  | None ->
    let rec wait () =
      match Unix.waitpid [] pid with
      | _, st -> st
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    in
    let st = wait () in
    (st, (Unix.gettimeofday () -. t0) *. 1000., false, false)
  | Some wall ->
    let kill_at = t0 +. (wall /. 1000.) in
    let term_at = ref None in
    let escalated = ref false in
    let rec poll () =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        let now = Unix.gettimeofday () in
        (match !term_at with
        | None when now >= kill_at ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          term_at := Some now
        | Some t when (not !escalated) && now -. t >= grace_ms /. 1000. ->
          escalated := true;
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
        | _ -> ());
        Unix.sleepf 0.002;
        poll ()
      | _, st -> st
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> poll ()
    in
    let st = poll () in
    (st, (Unix.gettimeofday () -. t0) *. 1000., !term_at <> None, !escalated)

(* {1 Classification} *)

let classify ~limits ~misbehave ~watchdog_fired ~escalated ~wall status =
  match status with
  | Unix.WEXITED 0 -> Ok ()
  | Unix.WEXITED 127 ->
    Error (Spawn_failed { reason = "could not execute the artifact (exit 127)" })
  | Unix.WEXITED code -> Error (Nonzero_exit { code })
  | Unix.WSTOPPED s ->
    (* waitpid without WUNTRACED never reports stops; keep the match
       total anyway. *)
    Error (Crashed { signal = signal_name s })
  | Unix.WSIGNALED s ->
    if watchdog_fired && (s = Sys.sigterm || s = Sys.sigkill) then
      Error (Timeout { wall_ms = wall; escalated })
    else if s = Sys.sigxcpu || (s = Sys.sigkill && limits.cpu_s <> None) then
      (* SIGXCPU at the soft limit; the kernel sends SIGKILL at the hard
         one if the child ignored the first warning. *)
      Error (Limit { what = "CPU time (RLIMIT_CPU)"; signal = signal_name s })
    else if s = Sys.sigxfsz then
      Error (Limit { what = "output file size (RLIMIT_FSIZE)"; signal = signal_name s })
    else if s = Sys.sigabrt && (limits.mem_bytes <> None || misbehave = Fault_oom) then
      (* Generated code routes every allocation through kf_malloc, which
         abort()s on failure — under RLIMIT_AS that is the canonical
         out-of-memory signature.  The stderr tail disambiguates the
         rare genuine assert. *)
      Error
        (Limit
           { what = "address space (RLIMIT_AS): allocation failed"; signal = signal_name s })
    else Error (Crashed { signal = signal_name s })

(* {1 Supervised run} *)

let run ?(deadline = Deadline.none) ?(limits = no_limits) ?(grace_ms = 500.)
    ?(fault_injection = true) ?stdout_path ?stderr_path ~argv () =
  let wall_ms =
    match (Deadline.remaining_ms deadline, limits.wall_ms) with
    | None, w -> w
    | Some r, None -> Some r
    | Some r, Some w -> Some (Float.min r w)
  in
  match wall_ms with
  | Some w when w <= 0. ->
    (* The deadline is already gone: don't even spawn. *)
    { status = Error (Timeout { wall_ms = 0.; escalated = false }); wall_ms = 0.; stderr_tail = "" }
  | _ ->
    (* Fault decisions happen in the parent: the Faults registry holds a
       mutex, which must not be touched between fork and exec. *)
    let misbehave =
      if not fault_injection then No_fault
      else if Faults.fires "exec.crash" then Fault_crash
      else if Faults.fires "exec.hang" then Fault_hang
      else if Faults.fires "exec.oom" then Fault_oom
      else No_fault
    in
    let own_stderr = stderr_path = None in
    let err_path =
      match stderr_path with Some p -> p | None -> Filename.temp_file "kfuse-sup" ".err"
    in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
    let stdout_fd =
      match stdout_path with
      | None -> devnull
      | Some p -> Unix.openfile p [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
    in
    let stderr_fd = Unix.openfile err_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close devnull with Unix.Unix_error _ -> ());
        (if stdout_fd != devnull then try Unix.close stdout_fd with Unix.Unix_error _ -> ());
        (try Unix.close stderr_fd with Unix.Unix_error _ -> ());
        if own_stderr then try Sys.remove err_path with Sys_error _ -> ())
      (fun () ->
        match spawn ~limits ~misbehave ~stdout_fd ~stderr_fd ~devnull argv with
        | Error reason ->
          { status = Error (Spawn_failed { reason }); wall_ms = 0.; stderr_tail = "" }
        | Ok pid ->
          let status, wall, watchdog_fired, escalated =
            wait_with_watchdog ~pid ~wall_ms ~grace_ms
          in
          let status = classify ~limits ~misbehave ~watchdog_fired ~escalated ~wall status in
          { status; wall_ms = wall; stderr_tail = read_tail err_path })

let failure_diag ~what r =
  match r.status with
  | Ok () -> None
  | Error f ->
    let tail = if r.stderr_tail = "" then "" else "\n" ^ r.stderr_tail in
    Some
      (match f with
      | Timeout { wall_ms; escalated } ->
        Diag.errorf Diag.Exec_timeout
          "%s exceeded its %.0f ms wall-clock deadline and was killed (SIGTERM%s)%s" what
          wall_ms
          (if escalated then ", escalated to SIGKILL" else "")
          tail
      | Crashed { signal } -> Diag.errorf Diag.Exec_crashed "%s crashed with %s%s" what signal tail
      | Limit { what = lim; signal } ->
        Diag.errorf Diag.Exec_limit "%s exceeded a resource limit: %s (%s)%s" what lim signal
          tail
      | Nonzero_exit { code } -> Diag.errorf Diag.Exec_failed "%s exited with %d%s" what code tail
      | Spawn_failed { reason } -> Diag.errorf Diag.Exec_failed "%s: %s%s" what reason tail)

(* {1 Long-lived supervised children} *)

(* [run] above is spawn-and-wait: right for a native plan execution that
   is supposed to finish.  A shard of the sharded kfused topology is the
   opposite — a server process that is supposed to *keep running* — so
   the fleet supervisor needs the same C-stub spawn (no [Unix.fork] once
   domains exist) but with ownership of the child's lifetime split
   across many monitor ticks: non-blocking liveness polls, best-effort
   signals, and a bounded terminate-then-escalate teardown. *)
module Child = struct
  type t = {
    pid : int;
    mutable reaped : Unix.process_status option;
    (* waitpid races: the monitor thread and the drain path may both
       poll; the first reap latches the status for everyone else. *)
    lock : Mutex.t;
  }

  let pid t = t.pid

  let open_sink ~append = function
    | None -> None
    | Some path ->
      let flags =
        Unix.O_WRONLY :: Unix.O_CREAT :: (if append then [ Unix.O_APPEND ] else [ Unix.O_TRUNC ])
      in
      Some (Unix.openfile path flags 0o600)

  let spawn ?(limits = no_limits) ?stdout_path ?stderr_path ?(append = true) ~argv () =
    match argv with
    | [] -> Error "empty argv"
    | _ -> (
      let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
      let close_all fds = List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds in
      match
        let stdout_fd = open_sink ~append stdout_path in
        let stderr_fd =
          (* stderr may share stdout's sink: one shard log per shard. *)
          if stderr_path = stdout_path then stdout_fd else open_sink ~append stderr_path
        in
        (stdout_fd, stderr_fd)
      with
      | exception Unix.Unix_error (e, _, p) ->
        close_all [ devnull ];
        Error (Printf.sprintf "cannot open %s: %s" p (Unix.error_message e))
      | stdout_fd, stderr_fd -> (
        let out = Option.value ~default:devnull stdout_fd in
        let err = Option.value ~default:out stderr_fd in
        let owned =
          devnull
          :: (Option.to_list stdout_fd
             @ if stderr_fd <> None && stderr_fd <> stdout_fd then Option.to_list stderr_fd else [])
        in
        match spawn ~limits ~misbehave:No_fault ~stdout_fd:out ~stderr_fd:err ~devnull argv with
        | Error _ as e ->
          close_all owned;
          e
        | Ok pid ->
          close_all owned;
          Ok { pid; reaped = None; lock = Mutex.create () }))

  (* Non-blocking reap: [None] while the child is still running, the
     latched exit status once it is gone.  Never raises — an ECHILD
     (someone else reaped it) degrades to a synthetic 0 exit. *)
  let poll t =
    Mutex.lock t.lock;
    let r =
      match t.reaped with
      | Some _ as s -> s
      | None -> (
        match Unix.waitpid [ Unix.WNOHANG ] t.pid with
        | 0, _ -> None
        | _, st ->
          t.reaped <- Some st;
          Some st
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> None
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          let st = Unix.WEXITED 0 in
          t.reaped <- Some st;
          Some st)
    in
    Mutex.unlock t.lock;
    r

  let running t = poll t = None

  let signal t s = if poll t = None then try Unix.kill t.pid s with Unix.Unix_error _ -> ()

  let kill t = signal t Sys.sigkill

  (* SIGTERM, wait up to [grace_ms] for a clean exit, SIGKILL past it,
     then reap.  Idempotent; returns the (possibly latched) status. *)
  let terminate ?(grace_ms = 2_000.) t =
    signal t Sys.sigterm;
    let deadline = Unix.gettimeofday () +. (grace_ms /. 1000.) in
    let rec wait_grace () =
      match poll t with
      | Some st -> st
      | None ->
        if Unix.gettimeofday () >= deadline then begin
          kill t;
          let rec reap () =
            match Unix.waitpid [] t.pid with
            | _, st ->
              Mutex.lock t.lock;
              t.reaped <- Some st;
              Mutex.unlock t.lock;
              st
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
            | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0
          in
          reap ()
        end
        else begin
          Unix.sleepf 0.005;
          wait_grace ()
        end
    in
    wait_grace ()
end

(* {1 Crash forensics} *)

(* The artifact mirrors the fuzz-corpus file format ('#' header comments
   the DSL lexer skips, then the unparsed pipeline), so `kfusec fuzz
   --corpus <dir>` can replay and shrink a production crash.  Reusing
   Fuzz.Corpus directly would invert the dependency arrow (kfuse_fuzz
   depends on kfuse_exec), so the few header lines are written here. *)
let save_crash_artifact ~dir ?seed ~toolchain ~diag (p : Pipeline.t) =
  match Kfuse_dsl.Unparse.pipeline p with
  | Error reason -> Error reason
  | Ok text ->
    let rec mkdirs d =
      if not (Sys.file_exists d) then begin
        mkdirs (Filename.dirname d);
        try Sys.mkdir d 0o755 with Sys_error _ -> ()
      end
    in
    mkdirs dir;
    let name = Printf.sprintf "%s.pipe" (String.sub (Fingerprint.structural p) 0 16) in
    let path = Filename.concat dir name in
    if Sys.file_exists path then Ok path
    else begin
      let one_line s = String.map (fun c -> if c = '\n' then ' ' else c) s in
      let clip n s = if String.length s <= n then s else String.sub s 0 n ^ " [...]" in
      let detail =
        clip 600 (one_line (Diag.to_string diag)) ^ " | toolchain: " ^ one_line toolchain
      in
      match
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
            output_string oc "# kfuse-fuzz corpus entry\n";
            (match seed with
            | Some s -> output_string oc (Printf.sprintf "# seed: %d\n" s)
            | None -> ());
            output_string oc "# oracle: exec-supervisor\n";
            output_string oc (Printf.sprintf "# detail: %s\n" detail);
            output_string oc text);
        Sys.rename tmp path
      with
      | () -> Ok path
      | exception Sys_error e -> Error e
    end

(* {1 Per-fingerprint circuit breaker} *)

module Breaker = struct
  type state = Closed | Open of { mutable since : float; diag : Diag.t }

  type entry = { mutable fails : int; mutable state : state }

  type t = {
    threshold : int;
    cooldown_ms : float;
    mutex : Mutex.t;
    entries : (string, entry) Hashtbl.t;
    mutable open_count : int;
  }

  type verdict = Allow | Probe | Quarantined of Diag.t

  let create ?(threshold = 3) ?(cooldown_ms = 60_000.) () =
    if threshold < 1 then invalid_arg "Breaker.create: threshold must be positive";
    {
      threshold;
      cooldown_ms;
      mutex = Mutex.create ();
      entries = Hashtbl.create 16;
      open_count = 0;
    }

  let threshold t = t.threshold

  let with_lock t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let entry t key =
    match Hashtbl.find_opt t.entries key with
    | Some e -> e
    | None ->
      let e = { fails = 0; state = Closed } in
      Hashtbl.replace t.entries key e;
      e

  let check t key =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.entries key with
        | None | Some { state = Closed; _ } -> Allow
        | Some { state = Open o; _ } ->
          let now = Unix.gettimeofday () in
          if t.cooldown_ms > 0. && (now -. o.since) *. 1000. >= t.cooldown_ms then begin
            (* Half-open: let one request probe; refresh [since] so
               concurrent requests keep getting the quarantine verdict
               instead of stampeding the broken plan. *)
            o.since <- now;
            Probe
          end
          else Quarantined o.diag)

  let record_failure t key diag =
    with_lock t (fun () ->
        let e = entry t key in
        e.fails <- e.fails + 1;
        match e.state with
        | Open o ->
          (* A failed half-open probe re-arms the cooldown. *)
          o.since <- Unix.gettimeofday ();
          false
        | Closed ->
          if e.fails >= t.threshold then begin
            e.state <- Open { since = Unix.gettimeofday (); diag };
            t.open_count <- t.open_count + 1;
            true
          end
          else false)

  let record_success t key =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.entries key with
        | None -> false
        | Some e ->
          e.fails <- 0;
          let was_open = match e.state with Open _ -> true | Closed -> false in
          e.state <- Closed;
          if was_open then t.open_count <- t.open_count - 1;
          was_open)

  let quarantined t = with_lock t (fun () -> t.open_count)

  let reset t key =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.entries key with
        | None -> ()
        | Some e ->
          (match e.state with Open _ -> t.open_count <- t.open_count - 1 | Closed -> ());
          Hashtbl.remove t.entries key)

  let reset_all t =
    with_lock t (fun () ->
        Hashtbl.reset t.entries;
        t.open_count <- 0)
end
