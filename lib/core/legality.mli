(** Legality of partition blocks (Section II-B).

    A partition block is legal when all its kernels can be fused into one
    while (a) preserving data dependence — no {e external dependence} may
    be introduced (the four scenarios of Figure 2), (b) satisfying the
    shared-memory resource constraint of Eq. 2, and (c) having compatible
    headers (same iteration space and access granularity — automatic
    within one pipeline, except for global kernels whose 1x1 reduction
    output breaks granularity). *)

type reason =
  | Not_connected  (** the block is not weakly connected *)
  | Multiple_sinks of int list
      (** more than one kernel's output would leave the block; only the
          destination kernel's output is preserved by fusion *)
  | External_output of { kernel : int; consumer : int }
      (** Figure 2c: an intermediate kernel's output is also consumed
          outside the block *)
  | External_input of { kernel : int; image : string }
      (** Figure 2d: a non-source kernel reads an image that is neither
          produced in the block nor an input of a source kernel *)
  | Global_kernel of int
      (** the block contains a reduction kernel (header incompatibility) *)
  | Resource of { fused_bytes : int; base_bytes : int; ratio : float }
      (** Eq. 2 violated: fused shared-memory usage grows by more than
          [c_mshared] over the largest standalone usage in the block *)

(** [check config pipeline block] decides legality of fusing the kernel
    indices in [block].  Singleton blocks are always legal.
    @raise Invalid_argument if [block] is empty or contains indices
    outside the pipeline. *)
val check :
  Config.t -> Kfuse_ir.Pipeline.t -> Kfuse_util.Iset.t -> (unit, reason) result

(** [is_legal config pipeline block] is [check ... = Ok ()]. *)
val is_legal : Config.t -> Kfuse_ir.Pipeline.t -> Kfuse_util.Iset.t -> bool

(** [check_partition config pipeline partition] checks the whole-result
    invariant any fusion strategy must meet: the blocks are pairwise
    disjoint, cover every kernel, contain no empties
    ({!Kfuse_graph.Partition.validate}), and each is legal per {!check}
    — including the Eq. 2 resource bound.  The first violation comes
    back as an {!Kfuse_util.Diag.Invalid_partition} diagnostic.  Never
    raises. *)
val check_partition :
  Config.t ->
  Kfuse_ir.Pipeline.t ->
  Kfuse_graph.Partition.t ->
  (unit, Kfuse_util.Diag.t) result

(** [block_sources pipeline block] is the set of kernels in [block] with
    no producer inside [block]. *)
val block_sources : Kfuse_ir.Pipeline.t -> Kfuse_util.Iset.t -> Kfuse_util.Iset.t

(** [block_sinks pipeline block] is the set of kernels in [block] whose
    output is consumed outside the block or is a pipeline output. *)
val block_sinks : Kfuse_ir.Pipeline.t -> Kfuse_util.Iset.t -> Kfuse_util.Iset.t

(** [fused_shared_bytes config pipeline block] estimates the
    shared-memory footprint of the hypothetical fused kernel: one tile
    per image that some in-block kernel reads with a window, sized by the
    window radius plus the accumulated downstream stencil radius inside
    the block (recomputation extends every tile towards the block output;
    cf. the Harris discussion in Section III-B). *)
val fused_shared_bytes : Config.t -> Kfuse_ir.Pipeline.t -> Kfuse_util.Iset.t -> int

(** [reason_to_string pipeline r] renders [r] with kernel names. *)
val reason_to_string : Kfuse_ir.Pipeline.t -> reason -> string

val pp_reason : Kfuse_ir.Pipeline.t -> Format.formatter -> reason -> unit
