module Iset = Kfuse_util.Iset
module Diag = Kfuse_util.Diag
module Faults = Kfuse_util.Faults
module Deadline = Kfuse_util.Deadline
module Partition = Kfuse_graph.Partition
module Pipeline = Kfuse_ir.Pipeline
module Kernel = Kfuse_ir.Kernel

type strategy = Baseline | Basic | Greedy | Mincut

type report = {
  strategy : strategy;
  inlined : string list;
  input : Pipeline.t;
  partition : Partition.t;
  edges : Benefit.edge_report list;
  steps : Mincut_fusion.step list;
  objective : float;
  fused : Pipeline.t;
  degraded : bool;
  warnings : Diag.t list;
}

let strategy_to_string = function
  | Baseline -> "baseline"
  | Basic -> "basic"
  | Greedy -> "greedy"
  | Mincut -> "mincut"

let strategy_of_string = function
  | "baseline" -> Some Baseline
  | "basic" -> Some Basic
  | "greedy" -> Some Greedy
  | "mincut" -> Some Mincut
  | _ -> None

let all_strategies = [ Baseline; Basic; Greedy; Mincut ]

(* Translate whatever a failing stage threw into one diagnostic.  The
   severity is [Warning] because in the default mode the failure is
   survivable: the driver falls back to the baseline partition. *)
let diag_of_failure ~strategy ~stage exn =
  let prefix = Printf.sprintf "%s strategy, %s stage" (strategy_to_string strategy) stage in
  match exn with
  | Diag.Fatal d -> d
  | Deadline.Expired { budget_ms } ->
    Diag.warningf Diag.Budget_exceeded "%s: exceeded the %gms fusion budget" prefix
      budget_ms
  | Faults.Fault { point; hit } ->
    Diag.warningf Diag.Fault_injected "%s: injected fault at point %S (hit %d)" prefix
      point hit
  | exn ->
    Diag.warningf Diag.Strategy_failed "%s: raised %s" prefix (Printexc.to_string exn)

(* Run one fallible stage.  [Out_of_memory]/[Stack_overflow] are never
   treated as degradable — they indicate resource exhaustion the
   fallback could not survive either. *)
let protect ~strategy ~stage f =
  match f () with
  | x -> Ok x
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception exn -> Error (diag_of_failure ~strategy ~stage exn)

let run ?(exchange = true) ?(optimize = false) ?(inline = false)
    ?(pool = Kfuse_util.Pool.serial) ?(strict = false) ?budget_ms config strategy
    (p : Pipeline.t) =
  (* Invalid configuration or a structurally broken pipeline is a caller
     error in every mode: there is no meaningful baseline to fall back
     to, so both fail fast with a typed diagnostic. *)
  (match Config.validate_result config with Ok () -> () | Error d -> Diag.fail d);
  (match Kfuse_ir.Validate.result p with Ok _ -> () | Error d -> Diag.fail d);
  let deadline =
    match budget_ms with None -> Deadline.none | Some ms -> Deadline.after_ms ms
  in
  let warnings = ref [] in
  (* In strict mode a degradable failure is fatal (re-raised as its
     diagnostic, at [Error] severity); otherwise it is recorded and the
     caller-provided fallback result stands in. *)
  let degrade d fallback =
    if strict then Diag.fail { d with Diag.severity = Diag.Error }
    else begin
      warnings := { d with Diag.severity = Diag.Warning } :: !warnings;
      fallback ()
    end
  in
  let p, inlined =
    if not inline then (p, [])
    else
      match
        protect ~strategy ~stage:"inline" (fun () -> Inline_fusion.greedy ~exchange config p)
      with
      | Ok r -> r
      | Error d -> degrade d (fun () -> (p, []))
  in
  let g = Pipeline.dag p in
  let baseline_result () =
    (* The always-legal fallback the paper guarantees: every singleton
       block is legal.  Edge reports are decorative here, so their
       failure degrades further to an empty fusion graph. *)
    let edges =
      match protect ~strategy ~stage:"fallback edges" (fun () -> Benefit.all_edges ~pool config p) with
      | Ok e -> e
      | Error d ->
        warnings := d :: !warnings;
        []
    in
    (Partition.singletons g, [], edges)
  in
  let attempt () =
    Faults.hit "driver.strategy";
    let result =
      match strategy with
      | Baseline -> (Partition.singletons g, [], Benefit.all_edges ~pool config p)
      | Basic -> (Basic_fusion.partition config p, [], Benefit.all_edges ~pool config p)
      | Greedy -> (Greedy_fusion.partition config p, [], Benefit.all_edges ~pool config p)
      | Mincut ->
        (* Reuse the weighted fusion graph the algorithm already scored. *)
        let r = Mincut_fusion.run ~pool ~deadline config p in
        (r.Mincut_fusion.partition, r.Mincut_fusion.steps, r.Mincut_fusion.edges)
    in
    (* Strategies without cooperative deadline checks are bounded here:
       finishing late still counts as exceeding the budget. *)
    Deadline.check deadline;
    result
  in
  let partition, steps, edges =
    match protect ~strategy ~stage:"search" attempt with
    | Error d -> degrade d baseline_result
    | Ok ((partition, _, _) as result) -> (
      match Legality.check_partition config p partition with
      | Ok () -> result
      | Error d -> degrade d baseline_result)
  in
  let weights = Mincut_fusion.weight_table edges in
  let weight_of u v =
    match Hashtbl.find_opt weights (u, v) with Some w -> w | None -> 0.0
  in
  let transform part =
    protect ~strategy ~stage:"transform" (fun () -> Transform.apply ~exchange p part)
  in
  let partition, steps, fused =
    match transform partition with
    | Ok fused -> (partition, steps, fused)
    | Error d ->
      if strict then Diag.fail { d with Diag.severity = Diag.Error }
      else begin
        warnings := { d with Diag.severity = Diag.Warning } :: !warnings;
        let part = Partition.singletons g in
        match transform part with
        | Ok fused -> (part, [], fused)
        | Error d ->
          (* Even the identity partition cannot be applied: internal. *)
          Diag.fail { d with Diag.severity = Diag.Error; Diag.code = Diag.Internal_error }
      end
  in
  let fused =
    if not optimize then fused
    else
      match
        protect ~strategy ~stage:"optimize" (fun () ->
            Kfuse_ir.Cse.pipeline (Kfuse_ir.Simplify.pipeline fused))
      with
      | Ok fused -> fused
      | Error d -> degrade d (fun () -> fused)
  in
  let objective = Partition.objective weight_of g partition in
  let warnings = List.rev !warnings in
  {
    strategy;
    inlined;
    input = p;
    partition;
    edges;
    steps;
    objective;
    fused;
    degraded = warnings <> [];
    warnings;
  }

let run_result ?exchange ?optimize ?inline ?pool ?strict ?budget_ms config strategy p =
  Diag.catch (fun () ->
      run ?exchange ?optimize ?inline ?pool ?strict ?budget_ms config strategy p)

let fused_kernel_count r = Pipeline.num_kernels r.fused

let pp_report ppf r =
  let p = r.input in
  let name i = (Pipeline.kernel p i).Kernel.name in
  Format.fprintf ppf "@[<v>strategy: %s@," (strategy_to_string r.strategy);
  List.iter (fun d -> Format.fprintf ppf "%a@," Diag.pp d) r.warnings;
  if r.degraded then Format.fprintf ppf "degraded: fell back to the baseline partition@,";
  if r.inlined <> [] then
    Format.fprintf ppf "inlined: %s@," (String.concat ", " r.inlined);
  Format.fprintf ppf "edges:@,";
  List.iter
    (fun (e : Benefit.edge_report) ->
      Format.fprintf ppf "  %s -> %s : %s, w=%.3f@," (name e.src) (name e.dst)
        (Benefit.scenario_to_string e.scenario) e.weight)
    r.edges;
  if r.steps <> [] then begin
    Format.fprintf ppf "trace:@,";
    List.iter (fun s -> Format.fprintf ppf "  %a@," (Mincut_fusion.pp_step p) s) r.steps
  end;
  Format.fprintf ppf "partition:";
  List.iter
    (fun b ->
      Format.fprintf ppf " {%s}" (String.concat ", " (List.map name (Iset.elements b))))
    r.partition;
  Format.fprintf ppf "@,objective beta = %.3f@," r.objective;
  Format.fprintf ppf "kernels: %d -> %d@]" (Pipeline.num_kernels p)
    (Pipeline.num_kernels r.fused)
