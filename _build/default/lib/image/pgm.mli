(** PGM (portable graymap) image I/O.

    Minimal support for the netpbm grayscale formats so examples and
    users can feed real images through pipelines: P5 (binary) and P2
    (ASCII), 8-bit or 16-bit.  Float pixels in [0, 1] map linearly onto
    [0, maxval]; out-of-range values are clamped on write. *)

(** [to_string ?maxval img] encodes [img] as a binary P5 graymap.
    [maxval] defaults to 255; values above 255 use 16-bit big-endian
    samples per the netpbm specification.
    @raise Invalid_argument if [maxval] is outside [1, 65535]. *)
val to_string : ?maxval:int -> Image.t -> string

(** [of_string data] decodes a P2 or P5 graymap into floats in [0, 1].
    @raise Invalid_argument on malformed input. *)
val of_string : string -> Image.t

(** [write ?maxval path img] writes [to_string img] to [path]. *)
val write : ?maxval:int -> string -> Image.t -> unit

(** [read path] loads a PGM file.
    @raise Sys_error on I/O failure, [Invalid_argument] on bad data. *)
val read : string -> Image.t
