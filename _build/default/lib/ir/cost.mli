(** Operation counts and shared-memory usage estimates.

    Implements the cost ingredients of the benefit model (Section II-C):
    the ALU/SFU operation counts of Eq. 6 and the shared-memory footprint
    [f_Mshared] used by the resource-legality check of Eq. 2.

    Counting convention: arithmetic nodes classify as ALU (add, sub, mul,
    min, max, neg, abs, floor, select) or SFU (sqrt, exp, log, sin, cos,
    pow, div — transcendental and multi-cycle units), and each kernel
    accounts one extra ALU operation for the output write.  This
    convention is calibrated against the paper's worked example, which
    counts [n_ALU = 2] for the squaring kernels [out = a * b] of the
    Harris detector (Section III-B). *)

type counts = { alu : int; sfu : int }

(** [op_counts e] counts arithmetic operations in [e] (no store). *)
val op_counts : Expr.t -> counts

(** [kernel_op_counts k] is [op_counts (body k)] plus one ALU operation
    for the output store; for global kernels the combine operation is
    counted per element. *)
val kernel_op_counts : Kernel.t -> counts

(** [cost_op ~c_alu ~c_sfu counts] is Eq. 6:
    [c_alu * alu + c_sfu * sfu], in cycles. *)
val cost_op : c_alu:float -> c_sfu:float -> counts -> float

(** Thread-block shape used for shared-memory tiles.  Hipacc's CUDA
    backend launches 2-D blocks; 32x4 is its default configuration. *)
type block = { bx : int; by : int }

val default_block : block

(** [tile_bytes block ~radius] is the size in bytes of a shared-memory
    tile holding a [block]-sized region extended by [radius] on each side
    ([(bx + 2r) * (by + 2r) * 4] for 32-bit pixels). *)
val tile_bytes : block -> radius:int -> int

(** [tile_bytes_window block w] sizes a tile for the rectangular
    footprint [w]: [(bx + width(w) - 1) * (by + height(w) - 1) * 4].
    Equals {!tile_bytes} for square radius-[r] windows; tighter for
    asymmetric stencils (e.g. 1-D blurs). *)
val tile_bytes_window : block -> Footprint.window -> int

(** [kernel_shared_bytes block k] is the standalone shared-memory usage
    [f_Mshared(k)]: one footprint-sized tile per input image accessed
    with a window, and 0 for point and global kernels. *)
val kernel_shared_bytes : block -> Kernel.t -> int

(** [register_estimate e] estimates the registers a straightforward
    compilation of [e] needs: a Sethi-Ullman labeling extended with [Let]
    (a binding's register stays live across its body).  The paper argues
    fusion barely increases register pressure because fused bodies are
    concatenated and each stage's values die before the next
    (Section II-B.1) — under this estimate, point-based fusion adds one
    live register per forwarded producer, matching that observation. *)
val register_estimate : Expr.t -> int

(** [kernel_registers ?base k] is [register_estimate] of the body plus a
    fixed overhead [base] (default 10) for index arithmetic and
    bookkeeping, clamped to the CUDA per-thread maximum of 255. *)
val kernel_registers : ?base:int -> Kernel.t -> int
