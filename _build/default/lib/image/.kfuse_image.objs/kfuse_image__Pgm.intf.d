lib/image/pgm.mli: Image
