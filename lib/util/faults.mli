(** Deterministic, seed-driven fault injection.

    Library hot paths declare {e named injection points} by calling
    {!hit}.  By default a hit is a no-op (one atomic load); a test — or
    the [KFUSE_FAULTS] environment variable, for end-to-end runs of the
    [kfusec] binary — can {e arm} a point with a deterministic trigger,
    making the matching hit raise {!Fault}.  Because triggers are counted
    (or drawn from a seeded RNG) per point, a failure schedule is exactly
    reproducible, which is what lets tests prove that the domain pool
    shuts down cleanly and the driver degrades instead of dying.

    Points currently instrumented:
    - ["pool.spawn"]  — before each worker-domain spawn in {!Pool.create}
    - ["pool.task"]   — before each task a pool worker executes
    - ["cut.stoer_wagner"] — entry of [Stoer_wagner.min_cut]
    - ["cut.block_legal"] — a {e corruption} point ({!fires}) in
      [Mincut_fusion.block_legal]: a triggered hit makes the predicate
      wrongly report the block as legal, so Algorithm 1 emits an illegal
      partition.  Exists for the differential fuzzer: arming
      ["cut.block_legal/1"] seeds a legality bug the legality oracle
      must catch and shrink
    - ["cut.karger"]  — entry of [Karger.min_cut]
    - ["sim.sample"]  — per measurement sample in [Sim.measure]
    - ["driver.strategy"] — before the driver runs the chosen strategy
    - ["service.accept"] — after each accepted [kfused] connection; a
      triggered fault drops that one connection while the server keeps
      serving
    - ["service.shed"] — at [kfused] admission; a triggered fault sheds
      that connection with a [KF0803] reply as if the admission queue
      were full, exercising the client's retry path
    - ["proto.torn_frame"] — at each [kfused] reply; a triggered fault
      writes a deliberately truncated frame and drops the connection,
      so the client must surface a typed mid-frame error
    - ["proto.slow_write"] — at each [kfused] reply; a triggered fault
      delays the write, exercising client receive timeouts and the
      server's send deadline
    - ["proto.drop_reply"] — at each [kfused] reply; a triggered fault
      swallows the reply and closes the connection, so the client must
      time out or see a clean close, never hang
    - ["exec.crash"] — per supervised native execution ({!fires}, drawn
      in the parent before fork); a triggered fault makes the child die
      with SIGSEGV instead of exec'ing, so the supervisor must classify
      a KF0906 and the service must count/quarantine it
    - ["exec.hang"] — per supervised native execution; the child sleeps
      forever instead of exec'ing, so the watchdog must SIGTERM→SIGKILL
      it into a KF0905
    - ["exec.oom"] — per supervised native execution; the child
      exhausts a tiny private RLIMIT_AS and aborts the way the
      generated allocator does, so the supervisor must classify a
      KF0907

    The registry is global and guarded by a mutex; {!hit} is safe to
    call from any domain. *)

exception Fault of { point : string; hit : int }
(** Raised by {!hit} when the point's trigger fires.  [hit] is the
    1-based count of calls at that point since it was armed. *)

(** When an armed point fires. *)
type trigger =
  | Nth of int  (** fire on exactly the [n]-th hit (1-based), once *)
  | Every of int  (** fire on every [n]-th hit *)
  | Prob of float * int  (** [(p, seed)]: each hit fires with probability
                             [p], drawn from a per-point generator seeded
                             with [seed] — deterministic across runs *)

val arm : string -> trigger -> unit
(** [arm point trigger] arms [point], resetting its hit counter. *)

val disarm : string -> unit

val clear : unit -> unit
(** Disarm every point and reset all counters. *)

val active : unit -> bool
(** [true] when at least one point is armed. *)

val hit : string -> unit
(** [hit point] counts a hit and raises {!Fault} if armed and triggered.
    Near-free when nothing is armed anywhere. *)

val fires : string -> bool
(** [fires point] counts a hit like {!hit} but reports a triggered fault
    as [true] instead of raising — the primitive for {e corruption}-style
    fault points, where the instrumented code keeps running and returns a
    deliberately wrong answer for the test harness to catch.  [false]
    when unarmed. *)

val hits : string -> int
(** Hits observed at [point] since it was last armed (0 if never armed;
    counting stops when a point is disarmed). *)

val parse_spec : string -> ((string * trigger) list, string) result
(** Parse a spec string: comma-separated clauses of the form
    - ["point@N"] for [Nth N]
    - ["point/N"] for [Every N]
    - ["point~P:SEED"] for [Prob (P, SEED)] (e.g. ["pool.task~0.01:42"])
    - ["point"] alone for [Nth 1]. *)

val arm_spec : string -> (unit, string) result
(** Parse and arm a spec string. *)

val env_var : string
(** ["KFUSE_FAULTS"]. *)

val arm_from_env : unit -> (unit, string) result
(** Arm from [KFUSE_FAULTS] if set and nonempty; [Ok ()] when unset. *)

val with_spec : string -> (unit -> 'a) -> 'a
(** [with_spec spec f] arms [spec] (which must parse), runs [f], and
    {!clear}s afterwards, also on exception.
    @raise Invalid_argument on a malformed spec. *)
