(** Deterministic synthetic video frames.

    [synthetic ~seed ~width ~height ~index] is frame [index] of the
    synthetic stream [seed]: a bright blob orbiting the frame center
    (real inter-frame motion for the temporal apps to detect) plus
    closed-form per-pixel hash noise.  Pure function of its arguments —
    the client, the server and the fuzz oracle all reconstruct exactly
    the same pixels from [(seed, index)], which is what lets
    [stream_push] ship a seed instead of half a megabyte of pixels. *)
val synthetic : seed:int -> width:int -> height:int -> index:int -> Kfuse_image.Image.t
