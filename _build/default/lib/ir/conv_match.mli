(** Recognition of convolution-shaped kernel bodies.

    The fusion engine never needs to know a body {e is} a convolution —
    patterns are derived from access offsets — but some transforms do:
    kernel {e distribution} (the paper's stated future work) splits a
    separable 2-D convolution into a horizontal and a vertical 1-D pass.
    This module recovers the stencil description from a weighted-sum
    expression and decides separability. *)

(** A recognized stencil: one image, a uniform border mode, and a
    coefficient per tap offset. *)
type stencil = {
  image : string;
  border : Kfuse_image.Border.mode;
  taps : ((int * int) * float) list;  (** [(dx, dy), coefficient], deduplicated *)
}

(** [extract e] recognizes [e] as a weighted sum of taps of a single
    image: a sum tree whose leaves are [Input] or [Const * Input] (in
    either order), all reading the same image with the same border mode.
    Duplicate offsets accumulate.  Anything else is [None]. *)
val extract : Expr.t -> stencil option

(** A rank-1 factorization [w(dx, dy) = horizontal(dx) * vertical(dy)]
    over the stencil's bounding window. *)
type factorization = {
  horizontal : (int * float) list;  (** [(dx, coefficient)], nonzero entries *)
  vertical : (int * float) list;  (** [(dy, coefficient)], nonzero entries *)
}

(** [separate s] factorizes the stencil when its coefficient matrix has
    rank 1 (up to [tolerance], relative).  The factor product
    reconstructs every tap exactly within the tolerance. *)
val separate : ?tolerance:float -> stencil -> factorization option

(** [tap_count s] is the number of nonzero taps. *)
val tap_count : stencil -> int
