bench/exp_ablate.ml: Array Float Kfuse_apps Kfuse_fusion Kfuse_gpu Kfuse_graph Kfuse_image Kfuse_ir Kfuse_util List Option Printf Runner String
