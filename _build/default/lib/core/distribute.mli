(** Kernel distribution: splitting separable convolutions.

    The paper's conclusion names {e kernel distribution} — the inverse of
    fusion — as future work.  This module implements its most profitable
    special case: a 2-D convolution whose coefficient matrix has rank 1
    splits into a horizontal 1-D pass followed by a vertical 1-D pass,
    reducing per-pixel taps from [k^2] to [2k] at the price of one
    materialized intermediate (the exact opposite of the fusion tradeoff,
    which is why the two compose interestingly: distribute first, then
    let Algorithm 1 decide what to re-fuse).

    Correctness requires the border mode to resolve each axis
    independently, which holds for clamp, mirror and repeat but not for
    constant padding (a corner would receive [c * sum(horizontal)]
    instead of [c]); such kernels are reported as unsplittable. *)

type verdict =
  | Split of Kfuse_ir.Conv_match.factorization
  | Not_convolution  (** body is not a weighted sum of taps of one image *)
  | Not_separable  (** coefficient matrix has rank > 1 *)
  | Not_two_dimensional  (** already a 1-D (or point) stencil *)
  | Unsupported_border  (** constant or undefined border padding *)

(** [judge pipeline kernel_name] decides whether the kernel can split.
    @raise Invalid_argument on an unknown kernel. *)
val judge : Kfuse_ir.Pipeline.t -> string -> verdict

(** [split pipeline kernel_name] replaces the kernel with a horizontal
    pass [<name>_sepH] followed by a vertical pass keeping the original
    name (so consumers and outputs are untouched).
    @raise Invalid_argument when {!judge} is not [Split]. *)
val split : Kfuse_ir.Pipeline.t -> string -> Kfuse_ir.Pipeline.t

(** [split_all pipeline] splits every splittable kernel; returns the
    rewritten pipeline and the names split. *)
val split_all : Kfuse_ir.Pipeline.t -> Kfuse_ir.Pipeline.t * string list

val verdict_to_string : verdict -> string
