lib/util/iset.ml: Format Int Set
