(** Elaboration: DSL syntax to the kernel IR.

    Each definition becomes one kernel named after its left-hand side.
    Name resolution: a bare identifier in an expression refers to a
    declared [param] if one exists, otherwise to a pipeline input or an
    earlier definition (a point access at offset 0).  Windowed accesses
    and [conv] take an optional border mode defaulting to [clamp]. *)

exception Elab_error of { pos : Ast.position; msg : string }

(** [pipeline ?width ?height ast] builds the validated IR pipeline.  The
    optional extents override the DSL [size] declaration (which itself
    defaults to 2048x2048x1 when absent).
    @raise Elab_error on name-resolution or mask errors (and lets
    {!Kfuse_ir.Pipeline.create}'s [Invalid_argument] pass through for
    structural ones). *)
val pipeline : ?width:int -> ?height:int -> Ast.pipeline -> Kfuse_ir.Pipeline.t

(** [named_mask name] resolves a builtin mask name ([gauss3], [gauss5],
    [sobelx], [sobely], [mean3], [mean5]). *)
val named_mask : string -> Kfuse_image.Mask.t option

(** [parse_pipeline ?width ?height src] is parsing plus elaboration with
    all errors rendered as strings. *)
val parse_pipeline : ?width:int -> ?height:int -> string -> (Kfuse_ir.Pipeline.t, string) result

(** [parse_pipeline_diag ?width ?height ?file src] is parsing plus
    elaboration with all errors as structured diagnostics: syntax errors
    as {!Kfuse_util.Diag.Parse_error}, name-resolution/mask/structural
    errors as {!Kfuse_util.Diag.Elab_error}, each carrying [file] and
    the source position when known.  Never raises on malformed input. *)
val parse_pipeline_diag :
  ?width:int ->
  ?height:int ->
  ?file:string ->
  string ->
  (Kfuse_ir.Pipeline.t, Kfuse_util.Diag.t) result
