(** Additional pipelines beyond the paper's six benchmarks.

    These exercise IR corners the paper's applications do not: the median
    filter is a pure min/max sorting network (heavy ALU, [Let]-bound
    intermediate ranks), and the Canny-lite edge chain stacks a
    point-to-local fusion boundary on top of the Sobel subgraph plus
    [select]-based thresholding. *)

(** [median9 ?border taps] is the median of nine expressions, computed by
    the classic 19-exchange sorting network, each exchange bound to
    registers.  Exposed for testing and for building median kernels over
    arbitrary windows.  [taps] must have exactly 9 elements.
    @raise Invalid_argument otherwise. *)
val median9 : Kfuse_ir.Expr.t list -> Kfuse_ir.Expr.t

(** [median_pipeline ?width ?height ()] is a two-kernel pipeline: a 3x3
    median filter (the paper's Section II-C.1 names median filtering as a
    local-operator example) followed by a contrast point kernel. *)
val median_pipeline : ?width:int -> ?height:int -> unit -> Kfuse_ir.Pipeline.t

(** [canny_lite_pipeline ?width ?height ()] is a five-kernel edge
    detector: Sobel derivatives, gradient magnitude, ridge suppression (a
    local maximum test against the 4-neighborhood), and a hysteresis-like
    double threshold. *)
val canny_lite_pipeline : ?width:int -> ?height:int -> unit -> Kfuse_ir.Pipeline.t

(** [night_rgb_pipeline ?width ?height ()] is an explicit three-plane
    variant of the Night filter (ten kernels over inputs [r], [g], [b]):
    per-plane a-trous passes, a cross-channel scotopic luminance, and a
    per-plane tone blend.  The paper's Night benchmark models RGB as
    three independent planes; this variant exercises fusion across a DAG
    with genuine cross-channel edges instead. *)
val night_rgb_pipeline : ?width:int -> ?height:int -> unit -> Kfuse_ir.Pipeline.t
