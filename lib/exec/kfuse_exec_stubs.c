/* Loader stubs for the native execution backend.
 *
 * The generated C for every pipeline is wrapped behind one fixed entry
 * point (ABI v2):
 *
 *   void kfuse_entry(const double** ins, double** outs, const double* params);
 *
 * so a single dlopen/dlsym/call stub covers every pipeline shape — no
 * ctypes/libffi dependency, no per-signature code.  The OCaml side
 * passes `float array` values, which are already packed 64-bit doubles,
 * so marshalling copies bits without rounding: the interpreter and the
 * compiled plan see identical inputs.
 *
 * No OCaml allocation happens between reading the arrays and writing
 * the results, so raw Field/Double_field access is GC-safe; the entry
 * call itself runs in a blocking section so other runtime threads (the
 * kfused worker pool) keep making progress during a long kernel.
 */

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/signals.h>

#include <dlfcn.h>
#include <errno.h>
#include <signal.h>
#include <stdlib.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <unistd.h>

/* Sandboxed spawn for the exec supervisor.
 *
 * OCaml 5 forbids Unix.fork once other domains exist — and both kfused
 * (its fusion-search Pool) and the test runner hold domain pools — so
 * the fork happens here, entirely in C: between fork and exec the
 * child runs only async-signal-safe libc calls (dup2, setrlimit,
 * sigprocmask, execvp), never the OCaml runtime.  Every OCaml value is
 * extracted into plain C memory *before* forking.
 *
 * Arguments:
 *   vargv     : string array        — argv; argv[0] resolved via PATH
 *   vfds      : fd * fd * fd        — stdin / stdout / stderr for the child
 *   vlimits   : int array [3]       — RLIMIT_CPU (s), RLIMIT_AS (bytes),
 *                                     RLIMIT_FSIZE (bytes); -1 = unlimited.
 *                                     Soft and hard are both set, so the
 *                                     child cannot raise them back.
 *   vmisbehave: int                 — chaos: 0 none, 1 die with SIGSEGV,
 *                                     2 hang forever, 3 exhaust a 64 MiB
 *                                     private RLIMIT_AS and abort (the
 *                                     generated kf_malloc's OOM signature)
 *
 * Returns the child pid; raises Failure when fork itself fails.  A
 * failed setrlimit is deliberately non-fatal in the child: the parent's
 * watchdog still covers it. */

static void kfuse_child_rlimit(int resource, long lim)
{
  struct rlimit rl;
  if (lim < 0) return;
  rl.rlim_cur = (rlim_t)lim;
  rl.rlim_max = (rlim_t)lim;
  (void)setrlimit(resource, &rl);
}

value kfuse_spawn(value vargv, value vfds, value vlimits, value vmisbehave)
{
  CAMLparam4(vargv, vfds, vlimits, vmisbehave);
  mlsize_t nargs = Wosize_val(vargv);
  char **argv = calloc(nargs + 1, sizeof(char *));
  if (argv == NULL) caml_failwith("kfuse_spawn: out of memory");
  for (mlsize_t i = 0; i < nargs; i++) {
    argv[i] = strdup(String_val(Field(vargv, i)));
    if (argv[i] == NULL) {
      for (mlsize_t j = 0; j < i; j++) free(argv[j]);
      free(argv);
      caml_failwith("kfuse_spawn: out of memory");
    }
  }
  int fd_in = Int_val(Field(vfds, 0));
  int fd_out = Int_val(Field(vfds, 1));
  int fd_err = Int_val(Field(vfds, 2));
  long cpu_s = Long_val(Field(vlimits, 0));
  long mem_bytes = Long_val(Field(vlimits, 1));
  long fsize_bytes = Long_val(Field(vlimits, 2));
  int misbehave = Int_val(vmisbehave);

  pid_t pid = fork();
  if (pid == 0) {
    /* Child.  The parent may have OCaml signal handlers (kfused's
     * SIGTERM drain, the runtime's SIGSEGV stack-guard handler) and a
     * thread signal mask; reset both so the watchdog's SIGTERM and the
     * chaos signals behave as for a fresh process.  (exec would reset
     * handlers anyway, but the misbehave paths never exec — and the
     * blocked-signal mask *survives* exec.) */
    sigset_t empty;
    sigemptyset(&empty);
    (void)sigprocmask(SIG_SETMASK, &empty, NULL);
    (void)signal(SIGTERM, SIG_DFL);
    (void)signal(SIGINT, SIG_DFL);
    (void)signal(SIGSEGV, SIG_DFL);
    (void)signal(SIGABRT, SIG_DFL);
    (void)signal(SIGPIPE, SIG_DFL);
    if (dup2(fd_in, 0) < 0 || dup2(fd_out, 1) < 0 || dup2(fd_err, 2) < 0)
      _exit(127);
    kfuse_child_rlimit(RLIMIT_CPU, cpu_s);
    kfuse_child_rlimit(RLIMIT_AS, mem_bytes);
    kfuse_child_rlimit(RLIMIT_FSIZE, fsize_bytes);
    switch (misbehave) {
    case 1:
      raise(SIGSEGV);
      _exit(0);
    case 2:
      for (;;) pause();
    case 3:
      kfuse_child_rlimit(RLIMIT_AS, 64L * 1024 * 1024);
      for (;;)
        if (malloc(4 * 1024 * 1024) == NULL) abort();
    default:
      break;
    }
    execvp(argv[0], argv);
    _exit(127);
  }

  int saved_errno = errno;
  for (mlsize_t i = 0; i < nargs; i++) free(argv[i]);
  free(argv);
  if (pid < 0) {
    char msg[256];
    snprintf(msg, sizeof msg, "fork: %s", strerror(saved_errno));
    caml_failwith(msg);
  }
  CAMLreturn(Val_long(pid));
}

typedef void (*kfuse_entry_fn)(const double **, double **, const double *);

value kfuse_dl_open(value vpath)
{
  CAMLparam1(vpath);
  void *h = dlopen(String_val(vpath), RTLD_NOW | RTLD_LOCAL);
  if (h == NULL) {
    const char *err = dlerror();
    caml_failwith(err ? err : "dlopen failed");
  }
  CAMLreturn(caml_copy_nativeint((intnat)h));
}

value kfuse_dl_sym(value vhandle, value vname)
{
  CAMLparam2(vhandle, vname);
  void *h = (void *)Nativeint_val(vhandle);
  /* Clear any stale error so a NULL result is unambiguous. */
  (void)dlerror();
  void *sym = dlsym(h, String_val(vname));
  if (sym == NULL) {
    const char *err = dlerror();
    caml_failwith(err ? err : "dlsym: symbol not found");
  }
  CAMLreturn(caml_copy_nativeint((intnat)sym));
}

value kfuse_dl_close(value vhandle)
{
  CAMLparam1(vhandle);
  dlclose((void *)Nativeint_val(vhandle));
  CAMLreturn(Val_unit);
}

static mlsize_t float_array_length(value v)
{
  return Wosize_val(v) / Double_wosize;
}

/* Float arrays above this length (in doubles = words) are guaranteed to
 * live on the major heap (allocations over Max_young_wosize = 256 words
 * never touch the minor heap, so no promotion can move them) and above
 * the compactor's size-class pools (<= 128 words), so their data
 * pointer is stable for the whole call even while the blocking section
 * lets the GC run on other threads.  Those arrays are handed to the
 * kernel in place — this is the per-frame streaming path, where the
 * malloc + copy of multi-megabyte buffers used to dominate the kernel
 * itself.  Smaller arrays keep the conservative copy. */
#define KFUSE_STABLE_LEN 4096

/* Free only the buffers this call allocated (owned[i] != 0). */
static void free_owned(double **bufs, const unsigned char *owned, mlsize_t n)
{
  if (bufs == NULL) return;
  for (mlsize_t i = 0; i < n; i++)
    if (owned != NULL && owned[i]) free(bufs[i]);
  free(bufs);
}

value kfuse_dl_call(value vfn, value vins, value vouts, value vparams)
{
  CAMLparam4(vfn, vins, vouts, vparams);
  kfuse_entry_fn fn = (kfuse_entry_fn)Nativeint_val(vfn);
  mlsize_t nin = Wosize_val(vins);
  mlsize_t nout = Wosize_val(vouts);
  mlsize_t npar = float_array_length(vparams);

  double **ins = calloc(nin ? nin : 1, sizeof(double *));
  double **outs = calloc(nout ? nout : 1, sizeof(double *));
  unsigned char *in_owned = calloc(nin ? nin : 1, 1);
  unsigned char *out_owned = calloc(nout ? nout : 1, 1);
  double *par = malloc((npar ? npar : 1) * sizeof(double));
  int oom = (ins == NULL || outs == NULL || in_owned == NULL || out_owned == NULL
             || par == NULL);

  for (mlsize_t i = 0; !oom && i < nin; i++) {
    value a = Field(vins, i);
    mlsize_t len = float_array_length(a);
    if (len > KFUSE_STABLE_LEN) {
      ins[i] = (double *)Op_val(a);
      continue;
    }
    ins[i] = malloc((len ? len : 1) * sizeof(double));
    if (ins[i] == NULL) { oom = 1; break; }
    in_owned[i] = 1;
    for (mlsize_t j = 0; j < len; j++)
      ins[i][j] = Double_field(a, j);
  }
  for (mlsize_t i = 0; !oom && i < nout; i++) {
    value a = Field(vouts, i);
    mlsize_t len = float_array_length(a);
    if (len > KFUSE_STABLE_LEN) {
      outs[i] = (double *)Op_val(a);
      continue;
    }
    outs[i] = calloc(len ? len : 1, sizeof(double));
    if (outs[i] == NULL) { oom = 1; break; }
    out_owned[i] = 1;
  }
  if (oom) {
    free_owned(ins, in_owned, nin);
    free_owned(outs, out_owned, nout);
    free(in_owned);
    free(out_owned);
    free(par);
    caml_failwith("kfuse_dl_call: out of memory marshalling buffers");
  }
  for (mlsize_t j = 0; j < npar; j++)
    par[j] = Double_field(vparams, j);

  caml_enter_blocking_section();
  fn((const double **)ins, outs, par);
  caml_leave_blocking_section();

  for (mlsize_t i = 0; i < nout; i++) {
    if (!out_owned[i]) continue; /* kernel already wrote in place */
    value a = Field(vouts, i);
    mlsize_t len = float_array_length(a);
    for (mlsize_t j = 0; j < len; j++)
      Store_double_field(a, j, outs[i][j]);
  }

  free_owned(ins, in_owned, nin);
  free_owned(outs, out_owned, nout);
  free(in_owned);
  free(out_owned);
  free(par);
  CAMLreturn(Val_unit);
}
