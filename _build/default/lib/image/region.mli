(** Interior / halo / exterior region analysis (Section IV-B).

    For a local operator of radius [r] over an image of extent
    [width x height]:
    - the {e interior} is the set of pixels whose full window lies inside
      the image — no border handling needed;
    - the {e halo} is the in-image band of width [r] along the borders,
      where windows reach outside — border handling (or, under fusion,
      index exchange) is required;
    - the {e exterior} is everything outside the image, where padding is
      conceptually applied.

    The interior width of an unfused kernel with mask width [lk] is
    [li - floor(lk/2) * 2] (paper, Section IV-B).  For a fused
    local-to-local kernel the effective radius is the {e sum} of the
    producer and consumer radii, consistent with the mask-growth formula
    Eq. 9 — the halo grows quadratically in the number of fused local
    kernels, which is why the paper stresses correct border handling. *)

type zone = Interior | Halo | Exterior

(** [classify ~width ~height ~radius x y] is the zone of coordinate
    [(x, y)] for a local operator of radius [radius >= 0].
    @raise Invalid_argument on negative radius or nonpositive extent. *)
val classify : width:int -> height:int -> radius:int -> int -> int -> zone

(** [interior_width ~image_width ~mask_width] is
    [image_width - floor(mask_width/2) * 2], clamped at 0. *)
val interior_width : image_width:int -> mask_width:int -> int

(** [fused_radius radii] is the effective radius of a chain of local
    kernels with the given radii: their sum. *)
val fused_radius : int list -> int

(** [interior_count ~width ~height ~radius] is the number of interior
    pixels. *)
val interior_count : width:int -> height:int -> radius:int -> int

(** [halo_count ~width ~height ~radius] is the number of halo pixels;
    [interior_count + halo_count = width * height]. *)
val halo_count : width:int -> height:int -> radius:int -> int

val zone_equal : zone -> zone -> bool
val pp_zone : Format.formatter -> zone -> unit
