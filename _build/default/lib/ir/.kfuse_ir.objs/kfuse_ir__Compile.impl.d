lib/ir/compile.ml: Array Expr Float Kfuse_image List Printf
