(** The fusion plan cache: content-addressed memoization of
    {!Kfuse_fusion.Driver} reports.

    Entries are addressed by {!Fingerprint.plan_key}: the canonical
    structural hash names the slot, and the exact fingerprint guards
    replay — a cached report is only returned when the request is
    bit-for-bit indistinguishable from the run that produced it, so a
    hit is guaranteed to equal a fresh {!Kfuse_fusion.Driver.run}.  A
    structurally-equal-but-renamed request is counted separately
    ([iso_misses]) and recomputed.

    Two tiers: an in-memory LRU (per process; thread-safe — one mutex,
    never held while computing a plan) and an optional on-disk
    content-addressed store so plans survive restarts.  Disk entries are
    one file per key under [dir], written atomically
    (temp-file-plus-rename) and self-describing: a header binds the
    format version and the producing OCaml version, and a payload digest
    detects truncation/corruption.  An unreadable, stale, or corrupt
    entry is deleted and treated as a miss — the disk tier can only ever
    cost a recompute, never wrongness ({!Kfuse_util.Diag.Cache_corrupt}
    is surfaced in {!stats} as [disk_errors]). *)

type t

(** Where a served report came from, or why it was computed. *)
type outcome =
  | Hit_memory
  | Hit_disk
  | Miss  (** never seen *)
  | Miss_iso
      (** same canonical structure, different naming — recomputed so the
          reply stays bit-identical to a fresh run *)

val outcome_to_string : outcome -> string

(** [create ?capacity ?dir ()] — [capacity] bounds the in-memory LRU
    (default 256 plans); [dir], when given, enables the on-disk tier
    (created on first store).  @raise Invalid_argument if
    [capacity < 1]. *)
val create : ?capacity:int -> ?dir:string -> unit -> t

(** [default_dir ()] is [$XDG_CACHE_HOME/kfuse] or [~/.cache/kfuse]
    (falling back to a [kfuse] directory under the temp dir when neither
    variable is set). *)
val default_dir : unit -> string

val dir : t -> string option

(** [find t key] is the cached report for [key], promoting disk hits
    into the memory tier.  Updates counters. *)
val find : t -> Fingerprint.key -> (Kfuse_fusion.Driver.report * outcome) option

(** [store t key report] writes both tiers (disk tier only if enabled;
    disk failures are counted, not raised).  A degraded report is {e not}
    stored: degradation reflects a budget or an injected fault, not the
    pipeline's content, so caching it would replay a transient accident
    forever. *)
val store : t -> Fingerprint.key -> Kfuse_fusion.Driver.report -> unit

(** [find_or_compute t key compute] is the memoized entry point:
    served from cache when possible, otherwise [compute ()] is run
    {e outside} the cache lock and stored on success. *)
val find_or_compute :
  t ->
  Fingerprint.key ->
  (unit -> (Kfuse_fusion.Driver.report, Kfuse_util.Diag.t) result) ->
  (Kfuse_fusion.Driver.report * outcome, Kfuse_util.Diag.t) result

type stats = {
  hits : int;  (** memory-tier hits *)
  misses : int;  (** complete misses (neither tier had the entry) *)
  iso_misses : int;
  evictions : int;
  entries : int;
  capacity : int;
  disk_hits : int;
  disk_misses : int;
  disk_errors : int;  (** corrupt/stale entries dropped (KF0701) *)
  stores : int;
}

val stats : t -> stats

(** [hit_rate s] is served-from-cache over total lookups, in [0, 1]
    ([0.] before any lookup). *)
val hit_rate : stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** [clear t] empties the memory tier (the disk tier is left alone). *)
val clear : t -> unit
