module Image = Kfuse_image.Image
module Border = Kfuse_image.Border
module Env = Map.Make (String)

type env = Image.t Env.t

let env_of_list bindings =
  List.fold_left (fun env (name, img) -> Env.add name img env) Env.empty bindings

let apply_unop op v =
  match op with
  | Expr.Neg -> -.v
  | Expr.Abs -> Float.abs v
  | Expr.Sqrt -> sqrt v
  | Expr.Exp -> exp v
  | Expr.Log -> log v
  | Expr.Sin -> sin v
  | Expr.Cos -> cos v
  | Expr.Floor -> Float.floor v

let apply_binop op a b =
  match op with
  | Expr.Add -> a +. b
  | Expr.Sub -> a -. b
  | Expr.Mul -> a *. b
  | Expr.Div -> a /. b
  | Expr.Min -> Float.min a b
  | Expr.Max -> Float.max a b
  | Expr.Pow -> Float.pow a b

let apply_cmp cmp a b =
  match cmp with
  | Expr.Lt -> a < b
  | Expr.Le -> a <= b
  | Expr.Eq -> Float.equal a b

let eval_expr ~env ~params ~width ~height ~x ~y e =
  let lookup_image name =
    match Env.find_opt name env with
    | Some img -> img
    | None -> invalid_arg (Printf.sprintf "Eval: unbound image %S" name)
  in
  let lookup_param name =
    match List.assoc_opt name params with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Eval: unbound parameter %S" name)
  in
  let rec go ~vars ~x ~y e =
    match e with
    | Expr.Const c -> c
    | Expr.Param p -> lookup_param p
    | Expr.Input { image; dx; dy; border } ->
      Image.get_bordered (lookup_image image) border (x + dx) (y + dy)
    | Expr.Var v -> (
      match List.assoc_opt v vars with
      | Some value -> value
      | None -> invalid_arg (Printf.sprintf "Eval: unbound variable %%%s" v))
    | Expr.Let { var; value; body } ->
      let bound = go ~vars ~x ~y value in
      go ~vars:((var, bound) :: vars) ~x ~y body
    | Expr.Unop (op, a) -> apply_unop op (go ~vars ~x ~y a)
    | Expr.Binop (op, a, b) -> apply_binop op (go ~vars ~x ~y a) (go ~vars ~x ~y b)
    | Expr.Select { cmp; lhs; rhs; if_true; if_false } ->
      if apply_cmp cmp (go ~vars ~x ~y lhs) (go ~vars ~x ~y rhs) then
        go ~vars ~x ~y if_true
      else go ~vars ~x ~y if_false
    | Expr.Shift { dx; dy; exchange; body } -> (
      (* Let-bound values are plain floats captured at their binding
         position; they stay in scope across a Shift (lexical scoping). *)
      let nx = x + dx and ny = y + dy in
      match exchange with
      | None -> go ~vars ~x:nx ~y:ny body
      | Some mode -> (
        (* Index exchange (Section IV-B): re-resolve the shifted position
           against the iteration space before evaluating the inlined
           producer body. *)
        match Border.resolve mode ~width ~height nx ny with
        | Border.Inside (nx', ny') -> go ~vars ~x:nx' ~y:ny' body
        | Border.Const_value c -> c
        | Border.Undef -> invalid_arg "Eval: undefined border in index exchange"))
  in
  go ~vars:[] ~x ~y e

(* Kernel execution compiles the body to a closure once (see {!Compile})
   instead of re-walking the AST per pixel; [eval_expr] above remains the
   executable specification the compiler is property-tested against. *)
let run_kernel ~env ~params ~width ~height (k : Kernel.t) =
  let lookup name =
    match Env.find_opt name env with
    | Some img -> img
    | None -> invalid_arg (Printf.sprintf "Eval: unbound image %S" name)
  in
  match k.op with
  | Kernel.Map body ->
    let c = Compile.expr ~width ~height ~params ~lookup body in
    let slots = Compile.scratch c in
    Image.init ~width ~height (fun x y -> c.Compile.eval slots x y)
  | Kernel.Reduce { init; combine; arg } ->
    let c = Compile.expr ~width ~height ~params ~lookup arg in
    let slots = Compile.scratch c in
    let f = apply_binop combine in
    let acc = ref init in
    for y = 0 to height - 1 do
      for x = 0 to width - 1 do
        acc := f !acc (c.Compile.eval slots x y)
      done
    done;
    let out = Image.create ~width:1 ~height:1 () in
    Image.set out 0 0 !acc;
    out

let check_inputs (p : Pipeline.t) env =
  List.iter
    (fun name ->
      match Env.find_opt name env with
      | None -> invalid_arg (Printf.sprintf "Eval.run(%s): missing input %S" p.name name)
      | Some img ->
        if Image.width img <> p.width || Image.height img <> p.height then
          invalid_arg
            (Printf.sprintf "Eval.run(%s): input %S is %dx%d, expected %dx%d" p.name
               name (Image.width img) (Image.height img) p.width p.height))
    p.inputs;
  Env.iter
    (fun name _ ->
      if not (List.mem name p.inputs) then
        invalid_arg (Printf.sprintf "Eval.run(%s): unexpected binding %S" p.name name))
    env

let merged_params (p : Pipeline.t) overrides =
  List.map
    (fun (name, default) ->
      (name, Option.value ~default (List.assoc_opt name overrides)))
    p.params

let run ?(params = []) (p : Pipeline.t) env =
  check_inputs p env;
  let params = merged_params p params in
  Array.fold_left
    (fun env k ->
      let out = run_kernel ~env ~params ~width:p.width ~height:p.height k in
      Env.add k.Kernel.name out env)
    env p.kernels

let run_outputs ?(params = []) p env =
  let final = run ~params p env in
  List.map (fun name -> (name, Env.find name final))
    (List.sort String.compare (Pipeline.outputs p))
