test/test_opt.ml: Alcotest Format Helpers Kfuse_apps Kfuse_fusion Kfuse_image Kfuse_ir Kfuse_util List Option
