(** Single-channel 2-D images of floats.

    The functional substrate on which pipelines are interpreted.  Images
    are dense row-major float arrays; multi-channel data (the Night
    filter's RGB input) is represented as one image per plane, matching
    the planar layout Hipacc generates. *)

type t

(** [create ~width ~height ()] is a zero image.
    @raise Invalid_argument on nonpositive dimensions. *)
val create : width:int -> height:int -> unit -> t

(** [init ~width ~height f] builds an image with [f x y] at [(x, y)]. *)
val init : width:int -> height:int -> (int -> int -> float) -> t

(** [const ~width ~height v] is an image filled with [v]. *)
val const : width:int -> height:int -> float -> t

(** [of_rows rows] builds an image from a list of equal-length rows
    (row 0 on top). @raise Invalid_argument on ragged or empty input. *)
val of_rows : float list list -> t

(** [width img] and [height img] are the image extents. *)
val width : t -> int

val height : t -> int

(** [get img x y] reads pixel [(x, y)].
    @raise Invalid_argument when out of bounds. *)
val get : t -> int -> int -> float

(** [get_bordered img mode x y] reads pixel [(x, y)], resolving
    out-of-bounds coordinates with [mode].
    @raise Invalid_argument if the access is out of bounds and [mode] is
    [Undefined]. *)
val get_bordered : t -> Border.mode -> int -> int -> float

(** [set img x y v] writes pixel [(x, y)] in place. *)
val set : t -> int -> int -> float -> unit

(** [copy img] is a deep copy. *)
val copy : t -> t

(** [to_flat img] is a fresh row-major copy of the pixels (row 0 first).
    A bulk [Array.copy], not a per-pixel loop: this is the per-frame
    marshalling path of the native execution backend. *)
val to_flat : t -> float array

(** [of_flat ~width ~height data] builds an image from a row-major
    array (copied).  @raise Invalid_argument on a length mismatch. *)
val of_flat : width:int -> height:int -> float array -> t

(** [unsafe_data img] is the image's backing array itself — row-major,
    NOT a copy.  Mutating it mutates the image.  For zero-copy read-only
    marshalling on the per-frame native execution path; everything else
    should use {!to_flat}. *)
val unsafe_data : t -> float array

(** [unsafe_of_flat ~width ~height data] wraps [data] as an image
    without copying — the caller transfers ownership and must not touch
    [data] afterwards.  @raise Invalid_argument on a length mismatch. *)
val unsafe_of_flat : width:int -> height:int -> float array -> t

(** [map f img] applies [f] pointwise. *)
val map : (float -> float) -> t -> t

(** [mapi f img] applies [f x y v] pointwise. *)
val mapi : (int -> int -> float -> float) -> t -> t

(** [map2 f a b] combines two images of equal extent pointwise.
    @raise Invalid_argument on extent mismatch. *)
val map2 : (float -> float -> float) -> t -> t -> t

(** [fold f acc img] folds over pixels in row-major order. *)
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

(** [equal a b] tests exact (bitwise float) equality of extents and
    pixels. *)
val equal : t -> t -> bool

(** [max_abs_diff a b] is the largest absolute pointwise difference.
    @raise Invalid_argument on extent mismatch. *)
val max_abs_diff : t -> t -> float

(** [equal_eps ~eps a b] tests equality up to absolute tolerance [eps]. *)
val equal_eps : eps:float -> t -> t -> bool

(** [random rng ~width ~height ~lo ~hi] fills an image with uniform
    samples in [\[lo, hi)] from the deterministic generator [rng]. *)
val random : Kfuse_util.Rng.t -> width:int -> height:int -> lo:float -> hi:float -> t

(** [pp ppf img] prints small images as a grid (intended for tests and
    demos). *)
val pp : Format.formatter -> t -> unit
