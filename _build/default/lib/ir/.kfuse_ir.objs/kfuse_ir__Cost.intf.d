lib/ir/cost.mli: Expr Footprint Kernel
