bench/main.ml: Array Exp_ablate Exp_eventsim Exp_fig3 Exp_fig4 Exp_fig6 Exp_tables List Micro Printf String Sys
