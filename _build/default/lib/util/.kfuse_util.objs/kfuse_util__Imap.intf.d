lib/util/imap.mli: Map
