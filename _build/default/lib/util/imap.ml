include Map.Make (Int)

let find_or ~default k m = match find_opt k m with Some v -> v | None -> default
let keys m = fold (fun k _ acc -> k :: acc) m [] |> List.rev
