lib/ir/footprint.mli: Expr Format Kernel
