examples/border_fusion_demo.mli:
