test/test_dsl.ml: Alcotest Float Format Helpers Kfuse_dsl Kfuse_image Kfuse_ir Kfuse_util List Option Printf String
