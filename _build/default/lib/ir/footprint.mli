(** Rectangular access footprints.

    Interval analysis of image accesses: for each input image, the
    smallest rectangle of offsets [(dx, dy)] a kernel reads around the
    current position.  This refines the scalar radius used in the
    paper's square-mask presentation: a 1-D horizontal blur
    [(dx in \[-2, 2\], dy = 0)] needs a tile with no vertical halo, which
    the Chebyshev radius over-approximates as a 5x5 window.

    Footprints compose under fusion exactly like radii: inlining a
    producer at consumer offsets translates to the Minkowski sum of the
    windows, which {!val:sum} implements and which equals Eq. 9's mask
    growth for square windows. *)

(** An inclusive offset rectangle; invariants [dx_min <= dx_max],
    [dy_min <= dy_max]. *)
type window = { dx_min : int; dx_max : int; dy_min : int; dy_max : int }

(** The single-point window [{0, 0}] of a point access. *)
val point : window

(** [of_radius r] is the square window [\[-r, r\]^2]. *)
val of_radius : int -> window

(** [make ~dx_min ~dx_max ~dy_min ~dy_max] checks the invariants. *)
val make : dx_min:int -> dx_max:int -> dy_min:int -> dy_max:int -> window

(** [union a b] is the bounding rectangle of both. *)
val union : window -> window -> window

(** [sum a b] is the Minkowski sum: the footprint of reading through a
    [b]-windowed consumer into an [a]-windowed producer.  For square
    windows of radii r1 and r2 this is the square of radius r1 + r2 —
    Eq. 9 in window form. *)
val sum : window -> window -> window

(** [width w] and [height w] are the extents in pixels. *)
val width : window -> int

val height : window -> int

(** [area w] is [width * height] — [sz()] for square windows. *)
val area : window -> int

(** [radius w] is the Chebyshev radius (largest absolute offset). *)
val radius : window -> int

(** [is_point w] tests [w = point]. *)
val is_point : window -> bool

(** [of_expr e] maps each image read by [e] to its footprint (total
    offsets, composing [Shift]s), in first-access order. *)
val of_expr : Expr.t -> (string * window) list

(** [of_kernel k] is the footprint of each declared input. *)
val of_kernel : Kernel.t -> (string * window) list

val equal : window -> window -> bool
val pp : Format.formatter -> window -> unit
