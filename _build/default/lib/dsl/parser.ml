module Border = Kfuse_image.Border

exception Parse_error of { pos : Ast.position; msg : string }

type state = { tokens : Lexer.spanned array; mutable idx : int }

let fail pos fmt = Printf.ksprintf (fun msg -> raise (Parse_error { pos; msg })) fmt

let current st = st.tokens.(st.idx)
let advance st = if st.idx < Array.length st.tokens - 1 then st.idx <- st.idx + 1

let expect st tok =
  let { Lexer.token; pos } = current st in
  if token = tok then advance st
  else fail pos "expected %s, found %s" (Lexer.token_to_string tok) (Lexer.token_to_string token)

let expect_ident st =
  match current st with
  | { Lexer.token = Lexer.Ident s; _ } ->
    advance st;
    s
  | { Lexer.token; pos } ->
    fail pos "expected an identifier, found %s" (Lexer.token_to_string token)

let expect_keyword st kw =
  let { Lexer.token; pos } = current st in
  match token with
  | Lexer.Ident s when String.equal s kw -> advance st
  | _ -> fail pos "expected %S, found %s" kw (Lexer.token_to_string token)

(* A possibly-negated number. *)
let signed_number st =
  match current st with
  | { Lexer.token = Lexer.Minus; _ } -> (
    advance st;
    match current st with
    | { Lexer.token = Lexer.Number f; _ } ->
      advance st;
      -.f
    | { Lexer.token; pos } ->
      fail pos "expected a number after '-', found %s" (Lexer.token_to_string token))
  | { Lexer.token = Lexer.Number f; _ } ->
    advance st;
    f
  | { Lexer.token; pos } -> fail pos "expected a number, found %s" (Lexer.token_to_string token)

let signed_int st =
  let pos = (current st).Lexer.pos in
  let f = signed_number st in
  if Float.is_integer f then int_of_float f else fail pos "expected an integer, got %g" f

let positive_int st =
  let pos = (current st).Lexer.pos in
  let v = signed_int st in
  if v > 0 then v else fail pos "expected a positive integer, got %d" v

let border_mode st =
  let pos = (current st).Lexer.pos in
  match expect_ident st with
  | "clamp" -> Border.Clamp
  | "mirror" -> Border.Mirror
  | "repeat" -> Border.Repeat
  | "undefined" -> Border.Undefined
  | "constant" ->
    expect st Lexer.Lparen;
    let c = signed_number st in
    expect st Lexer.Rparen;
    Border.Constant c
  | s -> fail pos "unknown border mode %S (expected clamp, mirror, repeat, constant(c), undefined)" s

let mask_row st =
  expect st Lexer.Lbracket;
  let rec loop acc =
    let v = signed_number st in
    match (current st).Lexer.token with
    | Lexer.Comma ->
      advance st;
      loop (v :: acc)
    | _ ->
      expect st Lexer.Rbracket;
      List.rev (v :: acc)
  in
  loop []

let mask_ref st =
  match current st with
  | { Lexer.token = Lexer.Lbracket; _ } ->
    advance st;
    let rec loop acc =
      let row = mask_row st in
      match (current st).Lexer.token with
      | Lexer.Comma ->
        advance st;
        loop (row :: acc)
      | _ ->
        expect st Lexer.Rbracket;
        List.rev (row :: acc)
    in
    Ast.Literal_mask (loop [])
  | _ -> Ast.Named_mask (expect_ident st)

let builtin_unary = [ "sqrt"; "exp"; "log"; "sin"; "cos"; "abs"; "floor"; "clamp01" ]
let builtin_binary = [ "min"; "max"; "pow" ]

let rec expr st = additive st

and additive st =
  let rec loop lhs =
    match (current st).Lexer.token with
    | Lexer.Plus ->
      advance st;
      loop (Ast.Binary ("+", lhs, multiplicative st))
    | Lexer.Minus ->
      advance st;
      loop (Ast.Binary ("-", lhs, multiplicative st))
    | _ -> lhs
  in
  loop (multiplicative st)

and multiplicative st =
  let rec loop lhs =
    match (current st).Lexer.token with
    | Lexer.Star ->
      advance st;
      loop (Ast.Binary ("*", lhs, unary st))
    | Lexer.Slash ->
      advance st;
      loop (Ast.Binary ("/", lhs, unary st))
    | _ -> lhs
  in
  loop (unary st)

and unary st =
  match (current st).Lexer.token with
  | Lexer.Minus ->
    advance st;
    Ast.Unary ("-", unary st)
  | _ -> primary st

and primary st =
  match current st with
  | { Lexer.token = Lexer.Number f; _ } ->
    advance st;
    Ast.Num f
  | { Lexer.token = Lexer.Lparen; _ } ->
    advance st;
    let e = expr st in
    expect st Lexer.Rparen;
    e
  | { Lexer.token = Lexer.Ident "let"; _ } ->
    advance st;
    let name = expect_ident st in
    expect st Lexer.Equals;
    let value = expr st in
    expect_keyword st "in";
    let body = expr st in
    Ast.Let_in { name; value; body }
  | { Lexer.token = Lexer.Ident name; pos } -> (
    advance st;
    match (current st).Lexer.token with
    | Lexer.At ->
      advance st;
      expect st Lexer.Lparen;
      let dx = signed_int st in
      expect st Lexer.Comma;
      let dy = signed_int st in
      expect st Lexer.Rparen;
      let border =
        match (current st).Lexer.token with
        | Lexer.Colon ->
          advance st;
          Some (border_mode st)
        | _ -> None
      in
      Ast.Access { name; dx; dy; border }
    | Lexer.Lparen -> call st name pos
    | _ -> Ast.Ref name)
  | { Lexer.token; pos } ->
    fail pos "expected an expression, found %s" (Lexer.token_to_string token)

and call st name pos =
  expect st Lexer.Lparen;
  if String.equal name "select" then begin
    (* select(a, b, t, f) = if a < b then t else f *)
    let rec args acc =
      let e = expr st in
      match (current st).Lexer.token with
      | Lexer.Comma ->
        advance st;
        args (e :: acc)
      | _ ->
        expect st Lexer.Rparen;
        List.rev (e :: acc)
    in
    match args [] with
    | [ _; _; _; _ ] as four -> Ast.Call ("select", four)
    | _ -> fail pos "select expects exactly 4 arguments (a, b, then, else)"
  end
  else if String.equal name "conv" then begin
    let image = expect_ident st in
    expect st Lexer.Comma;
    let mask = mask_ref st in
    let border =
      match (current st).Lexer.token with
      | Lexer.Comma ->
        advance st;
        Some (border_mode st)
      | _ -> None
    in
    expect st Lexer.Rparen;
    Ast.Conv { image; mask; border }
  end
  else begin
    let rec args acc =
      let e = expr st in
      match (current st).Lexer.token with
      | Lexer.Comma ->
        advance st;
        args (e :: acc)
      | _ ->
        expect st Lexer.Rparen;
        List.rev (e :: acc)
    in
    let arguments = args [] in
    match (List.mem name builtin_unary, List.mem name builtin_binary, arguments) with
    | true, _, [ a ] -> Ast.Unary (name, a)
    | _, true, [ a; b ] -> Ast.Call (name, [ a; b ])
    | true, _, _ -> fail pos "%s expects exactly 1 argument" name
    | _, true, _ -> fail pos "%s expects exactly 2 arguments" name
    | false, false, _ -> fail pos "unknown function %S" name
  end

let def_body st =
  match current st with
  | { Lexer.token = Lexer.Ident "reduce"; pos } -> (
    advance st;
    let op =
      match expect_ident st with
      | "sum" -> `Sum
      | "min" -> `Min
      | "max" -> `Max
      | s -> fail pos "unknown reduction %S (expected sum, min, max)" s
    in
    expect st Lexer.Lparen;
    let e = expr st in
    expect st Lexer.Rparen;
    Ast.Reduce_def (op, e))
  | _ -> Ast.Map_def (expr st)

let stmt st =
  let pos = (current st).Lexer.pos in
  match current st with
  | { Lexer.token = Lexer.Ident "size"; _ } ->
    advance st;
    let width = positive_int st in
    let height = positive_int st in
    let channels =
      match (current st).Lexer.token with
      | Lexer.Number _ -> Some (positive_int st)
      | _ -> None
    in
    Ast.Size { width; height; channels }
  | { Lexer.token = Lexer.Ident "param"; _ } ->
    advance st;
    let name = expect_ident st in
    expect st Lexer.Equals;
    let v = signed_number st in
    Ast.Param_decl (name, v)
  | { Lexer.token = Lexer.Ident name; _ } ->
    advance st;
    expect st Lexer.Equals;
    Ast.Def { name; body = def_body st; pos }
  | { Lexer.token; pos } ->
    fail pos "expected a statement, found %s" (Lexer.token_to_string token)

let parse src =
  let st = { tokens = Array.of_list (Lexer.tokenize src); idx = 0 } in
  let pos = (current st).Lexer.pos in
  expect_keyword st "pipeline";
  let name = expect_ident st in
  expect st Lexer.Lparen;
  let rec inputs acc =
    let i = expect_ident st in
    match (current st).Lexer.token with
    | Lexer.Comma ->
      advance st;
      inputs (i :: acc)
    | _ ->
      expect st Lexer.Rparen;
      List.rev (i :: acc)
  in
  let inputs = inputs [] in
  expect st Lexer.Lbrace;
  let rec stmts acc =
    match (current st).Lexer.token with
    | Lexer.Rbrace ->
      advance st;
      List.rev acc
    | _ -> stmts (stmt st :: acc)
  in
  let stmts = stmts [] in
  expect st Lexer.Eof;
  { Ast.name; inputs; stmts; pos }

let parse_result src =
  match parse src with
  | p -> Ok p
  | exception Parse_error { pos; msg } ->
    Error (Printf.sprintf "line %d, column %d: %s" pos.Ast.line pos.Ast.col msg)
  | exception Lexer.Lex_error { pos; msg } ->
    Error (Printf.sprintf "line %d, column %d: %s" pos.Ast.line pos.Ast.col msg)
