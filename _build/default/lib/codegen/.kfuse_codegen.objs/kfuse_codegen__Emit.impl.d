lib/codegen/emit.ml: Cuda_ast Float Format List Printf String
