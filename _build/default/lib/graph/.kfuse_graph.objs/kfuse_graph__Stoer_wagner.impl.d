lib/graph/stoer_wagner.ml: Array Kfuse_util List Wgraph
