lib/gpu/perf_model.ml: Array Device Float Format Kfuse_ir List Occupancy
