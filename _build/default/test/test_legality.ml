(* Tests for Kfuse_fusion.Legality: the dependence scenarios of Figure 2,
   the resource constraint of Eq. 2, and header/global checks. *)

module F = Kfuse_fusion
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask
module Iset = Kfuse_util.Iset

let config = F.Config.default

let point name inputs body = Kernel.map ~name ~inputs body

let pipe kernels =
  Pipeline.create ~name:"t" ~width:64 ~height:64 ~inputs:[ "in" ] kernels

let check_block p ids expected_ok =
  let result = F.Legality.check config p (Helpers.set_of ids) in
  Alcotest.(check bool)
    (Printf.sprintf "block %s" (String.concat "," (List.map string_of_int ids)))
    expected_ok
    (match result with Ok () -> true | Error _ -> false)

let reason p ids =
  match F.Legality.check config p (Helpers.set_of ids) with
  | Ok () -> Alcotest.fail "expected illegal block"
  | Error r -> r

(* Figure 2a: a straight chain in -> a -> b -> c. *)
let chain =
  let open Expr in
  pipe
    [
      point "a" [ "in" ] (input "in" * Const 2.0);
      point "b" [ "a" ] (input "a" + Const 1.0);
      point "c" [ "b" ] (input "b" * input "b");
    ]

let test_true_dependence () =
  check_block chain [ 0; 1 ] true;
  check_block chain [ 1; 2 ] true;
  check_block chain [ 0; 1; 2 ] true

let test_singleton_always_legal () =
  check_block chain [ 0 ] true;
  check_block chain [ 2 ] true

let test_not_connected () =
  (match reason chain [ 0; 2 ] with
  | F.Legality.Not_connected -> ()
  | r -> Alcotest.failf "wrong reason: %s" (F.Legality.reason_to_string chain r))

(* Figure 2b: shared input — all kernels read the pipeline input. *)
let shared_input =
  let open Expr in
  pipe
    [
      point "a" [ "in" ] (input "in" * Const 2.0);
      point "b" [ "in"; "a" ] (input "in" - input "a");
      point "c" [ "in"; "b" ] (input "in" + input "b");
    ]

let test_fig2b_shared_input_legal () =
  check_block shared_input [ 0; 1 ] true;
  check_block shared_input [ 0; 1; 2 ] true

(* Figure 2c: external output — a's output is consumed outside the block. *)
let external_output =
  let open Expr in
  pipe
    [
      point "a" [ "in" ] (input "in" * Const 2.0);
      point "b" [ "a" ] (input "a" + Const 1.0);
      point "other" [ "a" ] (input "a" - Const 1.0);
    ]

let test_fig2c_external_output () =
  (match reason external_output [ 0; 1 ] with
  | F.Legality.External_output { kernel = 0; _ } -> ()
  | r ->
    Alcotest.failf "wrong reason: %s" (F.Legality.reason_to_string external_output r));
  (* Enclosing the second consumer legalizes... but then two sinks. *)
  match reason external_output [ 0; 1; 2 ] with
  | F.Legality.Multiple_sinks _ -> ()
  | r -> Alcotest.failf "wrong reason: %s" (F.Legality.reason_to_string external_output r)

(* Figure 2d: external input — b reads an image produced outside the block
   that is not an input of the block source. *)
let external_input =
  let open Expr in
  pipe
    [
      point "x" [ "in" ] (input "in" * Const 3.0);
      point "a" [ "in" ] (input "in" * Const 2.0);
      point "b" [ "a"; "x" ] (input "a" + input "x");
    ]

let test_fig2d_external_input () =
  let p = external_input in
  let a = Option.get (Pipeline.index_of p "a") in
  let b = Option.get (Pipeline.index_of p "b") in
  match reason p [ a; b ] with
  | F.Legality.External_input { image = "x"; _ } -> ()
  | r -> Alcotest.failf "wrong reason: %s" (F.Legality.reason_to_string p r)

let test_global_kernel_blocks () =
  let open Expr in
  let p =
    pipe
      [
        point "a" [ "in" ] (input "in" * Const 2.0);
        Kernel.reduce ~name:"r" ~inputs:[ "a" ] ~init:0.0 ~combine:Expr.Add (input "a");
      ]
  in
  match reason p [ 0; 1 ] with
  | F.Legality.Global_kernel _ -> ()
  | r -> Alcotest.failf "wrong reason: %s" (F.Legality.reason_to_string p r)

(* Resource: a chain of local kernels accumulates tile radii (Eq. 2). *)
let local_chain =
  let open Expr in
  pipe
    [
      Kernel.map ~name:"l1" ~inputs:[ "in" ] (conv Mask.gaussian_3x3 "in");
      Kernel.map ~name:"l2" ~inputs:[ "l1" ] (conv Mask.gaussian_5x5 "l1");
      point "p" [ "l2" ] (input "l2" * Const 2.0);
    ]

let test_resource_violation () =
  (* Fusing l1 (r=1) into l2 (r=2): tiles r=3 (in) + r=2 (l1) versus the
     largest standalone tile r=2 -> ratio above 2. *)
  (match reason local_chain [ 0; 1 ] with
  | F.Legality.Resource { ratio; _ } ->
    Alcotest.(check bool) "ratio above threshold" true (ratio > config.F.Config.c_mshared)
  | r -> Alcotest.failf "wrong reason: %s" (F.Legality.reason_to_string local_chain r));
  (* With a generous threshold the same block becomes legal. *)
  let loose = { config with F.Config.c_mshared = 10.0 } in
  Alcotest.(check bool) "legal under loose threshold" true
    (F.Legality.is_legal loose local_chain (Helpers.set_of [ 0; 1 ]))

let test_local_to_point_resource_ok () =
  (* l2 + point consumer: the tile radius does not grow. *)
  check_block local_chain [ 1; 2 ] true

let test_fused_shared_bytes () =
  let block32x4 = config.F.Config.block in
  let t r = Kfuse_ir.Cost.tile_bytes block32x4 ~radius:r in
  (* Singleton blocks equal the standalone usage. *)
  Alcotest.(check int) "singleton local" (t 1)
    (F.Legality.fused_shared_bytes config local_chain (Helpers.set_of [ 0 ]));
  (* l1+l2: the input tile grows to radius 3, plus l1's output at r=2. *)
  Alcotest.(check int) "accumulated" (t 3 + t 2)
    (F.Legality.fused_shared_bytes config local_chain (Helpers.set_of [ 0; 1 ]));
  (* Point-only blocks stage nothing. *)
  Alcotest.(check int) "points stage nothing" 0
    (F.Legality.fused_shared_bytes config chain (Helpers.set_of [ 0; 1; 2 ]))

let test_block_sources_sinks () =
  let p = shared_input in
  Alcotest.check Helpers.iset "sources" (Helpers.set_of [ 0 ])
    (F.Legality.block_sources p (Helpers.set_of [ 0; 1; 2 ]));
  Alcotest.check Helpers.iset "sinks" (Helpers.set_of [ 2 ])
    (F.Legality.block_sinks p (Helpers.set_of [ 0; 1; 2 ]));
  Alcotest.check Helpers.iset "partial block sink" (Helpers.set_of [ 1 ])
    (F.Legality.block_sinks p (Helpers.set_of [ 0; 1 ]))

let test_empty_block_rejected () =
  Helpers.expect_invalid "empty" (fun () -> F.Legality.check config chain Iset.empty);
  Helpers.expect_invalid "out of range" (fun () ->
      F.Legality.check config chain (Helpers.set_of [ 99 ]))

let test_harris_whole_graph_resource () =
  (* Section III-B: fusing the whole Harris graph violates Eq. 2. *)
  let p = Kfuse_apps.Harris.pipeline ~width:64 ~height:64 () in
  let all = Kfuse_util.Iset.of_range 0 (Pipeline.num_kernels p - 1) in
  match reason p (Iset.elements all) with
  | F.Legality.Resource { ratio; _ } ->
    (* The paper argues the usage grows about fivefold; our tile model
       gives ~4.4. *)
    Alcotest.(check bool) "ratio in the right ballpark" true (ratio > 3.0 && ratio < 6.0)
  | r -> Alcotest.failf "wrong reason: %s" (F.Legality.reason_to_string p r)

let suite =
  [
    Alcotest.test_case "Fig 2a: true dependence" `Quick test_true_dependence;
    Alcotest.test_case "singletons legal" `Quick test_singleton_always_legal;
    Alcotest.test_case "disconnected block" `Quick test_not_connected;
    Alcotest.test_case "Fig 2b: shared input legal" `Quick test_fig2b_shared_input_legal;
    Alcotest.test_case "Fig 2c: external output" `Quick test_fig2c_external_output;
    Alcotest.test_case "Fig 2d: external input" `Quick test_fig2d_external_input;
    Alcotest.test_case "global kernels unfusible" `Quick test_global_kernel_blocks;
    Alcotest.test_case "Eq. 2 resource violation" `Quick test_resource_violation;
    Alcotest.test_case "local-to-point resource ok" `Quick test_local_to_point_resource_ok;
    Alcotest.test_case "fused shared bytes model" `Quick test_fused_shared_bytes;
    Alcotest.test_case "block sources/sinks" `Quick test_block_sources_sinks;
    Alcotest.test_case "invalid blocks rejected" `Quick test_empty_block_rejected;
    Alcotest.test_case "Harris whole graph violates Eq. 2" `Quick test_harris_whole_graph_resource;
  ]
