lib/core/benefit.mli: Config Format Kfuse_ir Legality
