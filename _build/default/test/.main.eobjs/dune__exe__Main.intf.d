test/main.mli:
