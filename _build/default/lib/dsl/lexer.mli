(** Hand-written lexer for the pipeline DSL.

    Comments run from [#] to end of line.  Numbers are decimal with an
    optional fraction and exponent; identifiers are
    [\[a-zA-Z_\]\[a-zA-Z0-9_\]*].  Keywords ([pipeline], [size], [param],
    [reduce]) are recognized by the parser, not the lexer. *)

type token =
  | Ident of string
  | Number of float
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Equals
  | At
  | Colon
  | Plus
  | Minus
  | Star
  | Slash
  | Eof

type spanned = { token : token; pos : Ast.position }

(** Raised on an unexpected character. *)
exception Lex_error of { pos : Ast.position; msg : string }

(** [tokenize src] is the token stream of [src], ending with [Eof].
    @raise Lex_error on invalid input. *)
val tokenize : string -> spanned list

val token_to_string : token -> string
