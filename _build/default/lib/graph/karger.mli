(** Karger's randomized minimum cut.

    The paper notes that "there exist extensive research efforts in graph
    theory on the minimum cut problem, including deterministic and
    randomized algorithms" (Section III-A) and chooses Stoer-Wagner for
    its determinism.  This module provides the classic randomized
    alternative — repeated weighted edge contraction — primarily to
    cross-validate {!Stoer_wagner} (each algorithm property-checks the
    other) and to let users trade determinism for speed on large graphs.

    One contraction run finds a fixed minimum cut with probability at
    least [2 / (n (n - 1))]; with the default attempt count of
    [ceil(n^2 ln n)] the failure probability is at most [1/n].  Edges are
    picked with probability proportional to weight, the weighted
    generalization. *)

(** [min_cut ?attempts rng g] is [(weight, side)] for the best cut found
    over [attempts] contraction runs (default [ceil(n^2 ln n)], at least
    1).  Deterministic given the generator state.  Disconnected graphs
    yield weight [0.].
    @raise Invalid_argument if [g] has fewer than 2 vertices. *)
val min_cut :
  ?attempts:int -> Kfuse_util.Rng.t -> Wgraph.t -> float * Kfuse_util.Iset.t

(** [contract_once rng g] runs a single contraction to two supervertices
    and returns the resulting cut — exposed for testing the contraction
    kernel itself. *)
val contract_once : Kfuse_util.Rng.t -> Wgraph.t -> float * Kfuse_util.Iset.t
