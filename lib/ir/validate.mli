(** Pipeline validation with structured diagnostics.

    {!Pipeline.create} enforces its invariants by raising
    [Invalid_argument], which is right for programmatic construction but
    wrong for untrusted input: the CLI and the driver want a complete,
    typed account of what is broken.  This module re-states the
    invariants as checks over a {e raw} pipeline description (a kernel
    list that may not be constructible at all — cyclic, dangling,
    duplicated) and returns every violation as a {!Kfuse_util.Diag.t}:

    - nonpositive iteration space (width/height/channels);
    - duplicate kernel/input/parameter identifiers;
    - dangling image references (read by a kernel, produced by nothing);
    - dependence cycles (reported with the kernel path);
    - global (reduction) kernels consumed downstream — their 1x1 output
      is not header-compatible with the iteration space (Section II-B.2);
    - stencil windows larger than the iteration space (mask-size sanity);
    - kernel parameters without defaults.

    [kfusec check] and [Driver.run_result] run {!pipeline} before any
    fusion work. *)

module Diag := Kfuse_util.Diag

(** A pipeline description before construction — the fields
    {!Pipeline.create} takes. *)
type input = {
  name : string;
  width : int;
  height : int;
  channels : int;
  inputs : string list;
  params : (string * float) list;
  kernels : Kernel.t list;
}

val of_pipeline : Pipeline.t -> input

val check : input -> Diag.t list
(** All diagnostics for the description, in deterministic order (space,
    then naming, then references, then cycles, then header/mask sanity).
    An empty kernel list yields a [Warning]-severity [Empty_pipeline]
    diagnostic; everything else is [Error]. *)

val errors : input -> Diag.t list
(** [check] restricted to [Error] severity. *)

val pipeline : Pipeline.t -> Diag.t list
(** [check] over an already-built pipeline.  By construction this is
    normally empty — it exists to catch internal corruption and to give
    [kfusec check] one entry point for both DSL files and built-ins. *)

val result : Pipeline.t -> (Pipeline.t, Diag.t) result
(** [Ok p] when {!pipeline} reports no errors, else [Error] with the
    first one. *)

val build : input -> (Pipeline.t, Diag.t) result
(** Validate a raw description and, when clean, construct the pipeline
    via {!Pipeline.create}.  Never raises on malformed input: a
    violation {!check} missed but [create] caught comes back as an
    [Internal_error] diagnostic. *)
