(** Exhaustive optimal fusion — an oracle for small pipelines.

    The fusion problem is a minimum-weight k-cut with k undetermined,
    which is NP-complete (Section III-C), so the paper's Algorithm 1 is a
    heuristic.  For small DAGs we can afford the exact answer: enumerate
    every partition of the kernels into connected, legal blocks (under
    the same extended legality as {!Mincut_fusion.block_legal}) and pick
    the one maximizing the objective beta of Eq. 1.

    This module exists for evaluation: the `ablate-optimal` benchmark
    compares Algorithm 1's beta against the optimum, and the test suite
    asserts the heuristic is optimal on all six paper applications. *)

(** [run ?max_kernels config pipeline] is [(beta, partition)] for an
    optimal partition.  Exponential; refuses pipelines with more than
    [max_kernels] (default 12) kernels.
    @raise Invalid_argument when the pipeline is too large. *)
val run :
  ?max_kernels:int -> Config.t -> Kfuse_ir.Pipeline.t -> float * Kfuse_graph.Partition.t

(** [optimal_objective ?max_kernels config pipeline] is the best beta. *)
val optimal_objective : ?max_kernels:int -> Config.t -> Kfuse_ir.Pipeline.t -> float

(** [run_with ?max_kernels config pipeline ~objective] maximizes an
    arbitrary [objective] over all partitions into legal blocks — e.g. a
    negated execution-time estimate from {!Kfuse_gpu}'s performance
    model, letting the `model` ablation ask whether the paper's
    cycle-saving objective β and an end-to-end time model pick the same
    partition.  The objective is evaluated once per complete candidate
    partition (given in normalized form). *)
val run_with :
  ?max_kernels:int ->
  Config.t ->
  Kfuse_ir.Pipeline.t ->
  objective:(Kfuse_graph.Partition.t -> float) ->
  float * Kfuse_graph.Partition.t

(** [count_legal_partitions ?max_kernels config pipeline] is the size of
    the search space: the number of partitions into legal blocks. *)
val count_legal_partitions : ?max_kernels:int -> Config.t -> Kfuse_ir.Pipeline.t -> int
