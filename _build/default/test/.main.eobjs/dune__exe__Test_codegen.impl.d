test/test_codegen.ml: Alcotest Float Format Helpers Kfuse_codegen Kfuse_fusion Kfuse_image Kfuse_ir List Printf String
