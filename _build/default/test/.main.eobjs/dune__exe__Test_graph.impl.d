test/test_graph.ml: Alcotest Helpers Kfuse_graph Kfuse_util List
