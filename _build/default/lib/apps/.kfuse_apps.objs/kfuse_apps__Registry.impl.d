lib/apps/registry.ml: Enhance Harris Kfuse_ir List Night Shitomasi Sobel String Unsharp
