lib/image/region.mli: Format
