(** Recursive-descent parser for the pipeline DSL.

    Operator precedence: unary minus binds tightest, then [*] and [/],
    then [+] and [-]; all binary operators are left-associative. *)

exception Parse_error of { pos : Ast.position; msg : string }

(** [parse src] parses one pipeline definition.
    @raise Parse_error (or {!Lexer.Lex_error}) on malformed input. *)
val parse : string -> Ast.pipeline

(** [parse_result src] is [parse] with errors rendered as
    ["line L, column C: message"]. *)
val parse_result : string -> (Ast.pipeline, string) result
