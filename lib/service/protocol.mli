(** The [kfused] wire protocol: length-prefixed JSON over a Unix-domain
    socket.

    Framing: each message is a 4-byte big-endian payload length followed
    by that many bytes of UTF-8 JSON.  Both directions use the same
    framing; a connection carries any number of request/response pairs,
    in order.  Frames above {!max_frame} are rejected as
    {!Kfuse_util.Diag.Protocol_error} (a defense against garbage
    writers, not a protocol limit).

    Requests are objects with an ["op"] field:
    - [{"op":"fuse", ...}] — plan a pipeline.  Either ["app"] (a
      registry name) or ["source"] (DSL text).  Optional: ["strategy"],
      ["c_mshared"], ["gamma"], ["tg"], ["optimize"], ["inline"],
      ["strict"], ["budget_ms"], ["no_cache"].
    - [{"op":"fuse_exec", ...}] — plan, then compile and execute the
      fused pipeline natively on server-synthesized inputs.  All
      ["fuse"] fields, plus optional ["exec_mode"] ("auto", "dlopen" or
      "subprocess"), ["width"]/["height"] (override the extent; apps
      only), ["seed"] (input synthesis, default 42), ["repeat"] (timing
      samples, default 1), ["verify"] (compare against the reference
      interpreter and report ["max_abs_diff"]), ["return_pixels"]
      (inline each output's pixel rows — small extents only, the reply
      must fit {!max_frame}).  Under the server's default sandbox
      policy the requested ["exec_mode"] is overridden by the
      supervised subprocess path (the reply's ["exec"] object says
      ["sandboxed"]: true); an execution that times out, crashes, or
      hits a resource limit is a typed [KF0905]/[KF0906]/[KF0907]
      error, and a quarantined plan answers with
      ["exec"."mode" = "interpreter"] and ["quarantined"]: true.
    - [{"op":"stream_open", ...}] — open a per-stream session: plan the
      pipeline once (through the plan cache), compile and pin the native
      artifact once, and allocate the stream's temporal frame window
      (see {!Kfuse_ir.Temporal}).  All ["fuse"] fields, plus optional
      ["exec_mode"], ["width"]/["height"] and ["seed"] (synthetic frame
      stream, default 42) as in [fuse_exec].  Replies with the session
      ["id"], the temporal ["depth"] and the plan/compile facts.  When
      the server is at [--max-streams] the open is shed with [KF0803].
    - [{"op":"stream_push", "id":...}] — run the next synthetic frame of
      session ["id"] against the pinned plan and the session's temporal
      state.  Optional ["verify"] and ["return_pixels"] as in
      [fuse_exec].  Replies with the frame ["seq"] and an ["exec"]
      object; when the session's bounded frame queue is full the push is
      shed with [KF0805] ({e before} touching temporal state — a shed
      frame never advances the stream), and an unknown/expired id is
      [KF0806].  A crashed execution quarantines the plan ([KF09xx]
      breaker) and the frame falls back to the interpreter against the
      same bindings, so the stream's pixel history stays bit-exact.
    - [{"op":"stream_close", "id":...}] — release the session (plan
      handle, temporal window); replies with the total ["frames"].
      Sessions idle longer than [--stream-idle-ms] are reaped lazily.
    - [{"op":"lazy_open", ...}] — open a lazy-pipeline editing session
      (see {!Kfuse_lazy.Lazy_pipeline}): either seed it from ["app"] /
      ["source"] (like [fuse]), or start an empty builder with
      ["width"]/["height"] (optional ["channels"] and ["inputs"], an
      array of input-image names).  Optional ["c_mshared"], ["gamma"],
      ["tg"] configure the session's fusion model.  Replies with the
      session ["id"].  Lazy sessions count against [--max-streams] and
      idle-expire like streams.
    - [{"op":"lazy_edit", "id":..., "command":...}] — apply one edit
      command (the [kfusec repl] grammar: [add <name> = <expr>],
      [del <name>], [retarget <kernel> <from> <to>],
      [param <name> <value>], [input <name>]) to the session's builder.
      A rejected edit (parse error, dangling reference, cycle, ...)
      returns its diagnostic and leaves the builder unchanged.
    - [{"op":"lazy_flush", "id":...}] — build and (re)plan the session's
      current pipeline through its incremental replanning memos
      ({!Kfuse_lazy.Replan}); with ["scratch"]: true, plan from scratch
      instead (the differential reference — does not touch the memos).
      Replies with the partition, objective, plan ["fingerprint"] and a
      ["replan"] object (blocks/edges reused vs recomputed,
      ["fell_back"], wall-clock ["replan_ms"]).
    - [{"op":"lazy_close", "id":...}] — release the session; replies
      with the session's total ["flushes"].
    - [{"op":"stats"}] — cache + latency counters as JSON.
    - [{"op":"metrics"}] — Prometheus-style text exposition (in the
      ["text"] field of the response).
    - [{"op":"ping"}] — liveness.
    - [{"op":"shutdown"}] — orderly server stop.

    Responses carry ["status"]: ["ok"] or ["error"] (with ["code"] —
    a stable [KFxxxx] id — and ["message"]). *)

module Diag := Kfuse_util.Diag

(** Maximum frame payload (16 MiB), enforced on both sides: {!recv}
    rejects oversized incoming frames, and {!send} refuses to emit one
    (raising {!Kfuse_util.Diag.Fatal} with [KF0801]) rather than ship a
    frame the peer would reject mid-stream. *)
val max_frame : int

(** {1 Framing} *)

(** [send ?deadline fd v] writes one frame.  [EINTR] is always retried;
    when the socket has an [SO_SNDTIMEO] armed, a blocked write retries
    while [deadline] (default {!Kfuse_util.Deadline.none}) allows and
    otherwise surfaces the timeout.
    @raise Unix.Unix_error on I/O failure (the peer vanished, or a
    socket-level send timeout with no [deadline] to extend it).
    @raise Kfuse_util.Deadline.Expired when [deadline] passes mid-write.
    @raise Kfuse_util.Diag.Fatal when the encoded frame would exceed
    {!max_frame}; nothing is written. *)
val send : ?deadline:Kfuse_util.Deadline.t -> Unix.file_descr -> Jsonx.t -> unit

(** [send_torn fd v] deliberately writes a truncated frame — a full
    header announcing the payload length, then only half the payload —
    for the protocol chaos harness (the ["proto.torn_frame"] fault).
    The peer must surface a typed mid-frame error, never hang. *)
val send_torn : Unix.file_descr -> Jsonx.t -> unit

(** [recv fd] reads one frame; [Ok None] on clean EOF at a frame
    boundary; [Error] on oversized/truncated frames or invalid JSON.
    When the socket has an [SO_RCVTIMEO] armed, an elapsed timeout is a
    {!Kfuse_util.Diag.Request_timeout} ([KF0804]) error. *)
val recv : Unix.file_descr -> (Jsonx.t option, Diag.t) result

(** {1 Requests} *)

type fuse_request = {
  app : string option;  (** registry name; mutually exclusive with [source] *)
  source : string option;  (** DSL text *)
  strategy : Kfuse_fusion.Driver.strategy;
  c_mshared : float option;
  gamma : float option;
  tg : float option;
  optimize : bool;
  inline : bool;
  strict : bool;
      (** fail fast with a typed error reply instead of degrading to the
          baseline partition when the search overruns its budget *)
  budget_ms : float option;
  no_cache : bool;  (** compute fresh, bypassing the plan cache *)
}

type fuse_exec_request = {
  fuse : fuse_request;  (** planning options; [no_cache] bypasses the
                            plan cache only — compiled artifacts stay
                            content-addressed *)
  exec_mode : Kfuse_exec.Native.mode option;
      (** [None] = try {!Kfuse_exec.Native.Dlopen}, fall back to
          {!Kfuse_exec.Native.Subprocess} *)
  width : int option;  (** extent override, apps only; paired with [height] *)
  height : int option;
  seed : int;  (** deterministic input synthesis *)
  repeat : int;  (** timing samples per execution *)
  verify : bool;  (** also run the interpreter, report [max_abs_diff] *)
  return_pixels : bool;  (** inline output pixels in the reply *)
}

type stream_open_request = {
  fuse : fuse_request;
  exec_mode : Kfuse_exec.Native.mode option;
      (** [None] = try {!Kfuse_exec.Native.Dlopen}, fall back to
          {!Kfuse_exec.Native.Subprocess} *)
  width : int option;  (** extent override, apps only; paired with [height] *)
  height : int option;
  seed : int;  (** synthetic frame stream seed *)
}

type stream_push_request = {
  id : string;  (** session id from the [stream_open] reply *)
  verify : bool;  (** also run the interpreter, report [max_abs_diff] *)
  return_pixels : bool;  (** inline output pixels in the reply *)
}

type lazy_open_request = {
  app : string option;  (** seed pipeline; mutually exclusive with [source] *)
  source : string option;  (** DSL text seed *)
  width : int option;  (** app-seed size override, or empty-builder extent *)
  height : int option;
  channels : int option;  (** empty-builder channels (default 1) *)
  inputs : string list;  (** empty-builder input-image declarations *)
  c_mshared : float option;
  gamma : float option;
  tg : float option;
}

type lazy_edit_request = {
  id : string;  (** session id from the [lazy_open] reply *)
  command : string;  (** one line of the repl edit grammar *)
}

type lazy_flush_request = {
  id : string;  (** session id from the [lazy_open] reply *)
  scratch : bool;  (** plan from scratch, bypassing the session memos *)
}

type request =
  | Fuse of fuse_request
  | Fuse_exec of fuse_exec_request
  | Stream_open of stream_open_request
  | Stream_push of stream_push_request
  | Stream_close of string  (** session id *)
  | Lazy_open of lazy_open_request
  | Lazy_edit of lazy_edit_request
  | Lazy_flush of lazy_flush_request
  | Lazy_close of string  (** session id *)
  | Stats
  | Metrics
  | Ping
  | Shutdown

val request_to_json : request -> Jsonx.t

(** [request_of_json v] validates shape and field types; unknown ops and
    malformed fields are {!Kfuse_util.Diag.Protocol_error}s. *)
val request_of_json : Jsonx.t -> (request, Diag.t) result

(** {1 Responses} *)

(** [ok fields] is [{"status":"ok", ...fields}]. *)
val ok : (string * Jsonx.t) list -> Jsonx.t

(** [error d] renders a diagnostic as an error response. *)
val error : Diag.t -> Jsonx.t

(** [result v] splits a response on its ["status"] field.  An error
    response's ["code"] is folded back into the typed diagnostic code
    (unknown codes degrade to {!Kfuse_util.Diag.Service_error}), so
    clients can dispatch — e.g. retry [KF0803] — without string
    matching. *)
val result : Jsonx.t -> (Jsonx.t, Diag.t) result
