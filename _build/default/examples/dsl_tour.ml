(* Tour of the pipeline DSL: parse a pipeline from text, fuse it, run it
   on real pixels, and emit CUDA for the fused result.

   Run with: dune exec examples/dsl_tour.exe *)

module F = Kfuse_fusion
module Ir = Kfuse_ir
module Img = Kfuse_image
module Iset = Kfuse_util.Iset

let src =
  {|
# A small feature-enhancement pipeline written in the kfuse DSL.
pipeline glow(in) {
  size 256 256
  param strength = 0.45

  blur   = conv(in, gauss3, mirror)
  detail = in - blur
  gain   = detail * detail * strength
  out    = clamp01(in + gain)
}
|}

let () =
  let p =
    match Kfuse_dsl.Elaborate.parse_pipeline src with
    | Ok p -> p
    | Error e ->
      Format.eprintf "DSL error: %s@." e;
      exit 1
  in
  Format.printf "parsed pipeline:@.%a@.@." Ir.Pipeline.pp p;

  let report = F.Driver.run F.Config.default F.Driver.Mincut p in
  Format.printf "%a@.@." F.Driver.pp_report report;

  (* Run both versions on a random image and compare. *)
  let rng = Kfuse_util.Rng.create 99 in
  let img = Img.Image.random rng ~width:256 ~height:256 ~lo:0.0 ~hi:1.0 in
  let env = Ir.Eval.env_of_list [ ("in", img) ] in
  let a = snd (List.hd (Ir.Eval.run_outputs p env)) in
  let b = snd (List.hd (Ir.Eval.run_outputs report.F.Driver.fused env)) in
  Format.printf "fused == unfused: %b@.@." (Img.Image.max_abs_diff a b < 1e-9);

  print_endline "generated CUDA for the fused pipeline:";
  print_endline (Kfuse_codegen.Lower.emit_pipeline report.F.Driver.fused)
