(** Supervised, sandboxed execution of native artifacts.

    PR 6 taught [kfused] to run {e generated machine code}; this module
    is what keeps the daemon alive when that code is wrong.  Every
    supervised execution is a [fork]/[exec] child — no shell — with:

    - [setrlimit] caps (CPU seconds, address space, output file size)
      applied between fork and exec via a C stub, so a runaway kernel is
      stopped by the OS, not by luck;
    - a wall-clock watchdog fed from {!Kfuse_util.Deadline.remaining_ms}
      that sends SIGTERM at the deadline and escalates to SIGKILL after
      a short grace period;
    - exit-status classification into typed diagnostics: KF0905
      ({!Diag.Exec_timeout}), KF0906 ({!Diag.Exec_crashed}, with the
      signal name), KF0907 ({!Diag.Exec_limit});
    - a stderr tail capped at 4 KiB before it is embedded in a
      diagnostic, so pathological child output cannot balloon a reply
      over the 16 MiB wire-frame cap.

    Crash forensics ({!save_crash_artifact}) write the failing pipeline
    into a fuzz-corpus-compatible [.pipe] file, and a per-fingerprint
    circuit {!Breaker} lets the service quarantine plans that keep
    failing, degrading them to the interpreter.

    Chaos fault points (armed via [KFUSE_FAULTS], see
    {!Kfuse_util.Faults}): ["exec.crash"] makes the child die with
    SIGSEGV, ["exec.hang"] makes it sleep forever (the watchdog must
    reap it), ["exec.oom"] makes it exhaust a tiny private RLIMIT_AS and
    abort like the generated [kf_malloc] does.  The fault decision is
    drawn in the parent, before fork. *)

module Diag = Kfuse_util.Diag
module Deadline = Kfuse_util.Deadline
module Pipeline = Kfuse_ir.Pipeline

(** {1 Sandbox policy}

    How [kfused] runs native plans ([--exec-sandbox]):
    - {!Sandboxed} (default): every execution is a supervised subprocess
      with rlimits and the watchdog; in-process dlopen is never used.
    - {!Dlopen_trusted}: the fast in-process dlopen path is allowed
      (trusting codegen); subprocess executions are still supervised.
    - {!Unsandboxed}: PR 6 behaviour — no rlimits, no circuit breaker;
      subprocess executions still use fork/exec and honor deadlines. *)
type policy = Sandboxed | Dlopen_trusted | Unsandboxed

val policy_to_string : policy -> string
(** ["on"], ["dlopen-trusted"], ["off"]. *)

val policy_of_string : string -> policy option

(** {1 Resource limits} *)

type limits = {
  wall_ms : float option;  (** watchdog cap, even without a request deadline *)
  cpu_s : int option;  (** RLIMIT_CPU, seconds *)
  mem_bytes : int option;  (** RLIMIT_AS, bytes *)
  fsize_bytes : int option;  (** RLIMIT_FSIZE, bytes *)
}

val no_limits : limits
(** Everything unlimited: supervised spawning without a sandbox. *)

val default_limits : limits
(** The service defaults: 30 s wall, 60 s CPU, 2 GiB address space,
    256 MiB output file — generous for every pipeline in the app
    registry, fatal for a runaway kernel. *)

(** {1 Supervised runs} *)

(** Why a child did not exit 0. *)
type failure =
  | Timeout of { wall_ms : float; escalated : bool }
      (** watchdog killed it; [escalated] when SIGTERM was ignored and
          SIGKILL was needed *)
  | Crashed of { signal : string }  (** died on a crash signal, e.g. ["SIGSEGV"] *)
  | Limit of { what : string; signal : string }  (** hit an rlimit *)
  | Nonzero_exit of { code : int }
  | Spawn_failed of { reason : string }

type run = {
  status : (unit, failure) result;
  wall_ms : float;  (** observed wall time of the child, ms *)
  stderr_tail : string;  (** last ≤4 KiB of the child's stderr *)
}

val run :
  ?deadline:Deadline.t ->
  ?limits:limits ->
  ?grace_ms:float ->
  ?fault_injection:bool ->
  ?stdout_path:string ->
  ?stderr_path:string ->
  argv:string list ->
  unit ->
  run
(** [run ~argv ()] forks and execs [argv] (via [PATH] lookup, never a
    shell) and waits for it under the watchdog.  The effective wall cap
    is the minimum of [Deadline.remaining_ms deadline] and
    [limits.wall_ms]; when the deadline is already expired the child is
    not spawned at all and the result is a {!Timeout}.  [grace_ms]
    (default 500) is the SIGTERM→SIGKILL escalation delay.  stdout goes
    to [stdout_path] (default [/dev/null]); stderr is captured to
    [stderr_path] (default: a private temp file, removed afterwards) and
    returned as a capped tail.  [fault_injection] (default [true])
    enables the [exec.*] chaos points — the compile path disables it so
    an armed ["exec.crash"] hits executions, not compiler invocations.
    Never raises: spawn problems come back as {!Spawn_failed}. *)

val failure_diag : what:string -> run -> Diag.t option
(** [failure_diag ~what r] is [None] on success, otherwise the typed
    diagnostic for the failure — KF0905/KF0906/KF0907 for
    timeout/crash/limit, KF0904 for nonzero exits and spawn failures —
    with the capped stderr tail appended.  [what] names the subject
    (e.g. ["compiled plan /path/kf-....bin"]). *)

val signal_name : int -> string
(** OCaml signal number → conventional name (["SIGSEGV"], ...);
    [Printf]-rendered number for signals without one. *)

val stderr_tail_limit : int
(** 4096: the stderr capture cap, in bytes. *)

val read_tail : ?limit:int -> string -> string
(** Last [limit] (default {!stderr_tail_limit}) bytes of a file, with a
    truncation marker when shortened; [""] when unreadable. *)

(** {1 Long-lived supervised children}

    {!run} is spawn-and-wait; a shard of the sharded [kfused] topology
    is a server process that must {e keep} running.  {!Child} exposes
    the same no-[Unix.fork] C-stub spawn with the lifetime split across
    monitor ticks: non-blocking liveness polls, best-effort signals, and
    a bounded SIGTERM→SIGKILL teardown.  Thread-safe: the first
    successful reap latches the exit status for every later caller. *)
module Child : sig
  type t

  val spawn :
    ?limits:limits ->
    ?stdout_path:string ->
    ?stderr_path:string ->
    ?append:bool ->
    argv:string list ->
    unit ->
    (t, string) result
  (** Fork and exec [argv] (via [PATH], never a shell) and return
      immediately.  stdin is [/dev/null]; stdout/stderr go to the named
      paths (opened [O_APPEND] by default so restart logs accumulate;
      [~append:false] truncates), both defaulting to [/dev/null] —
      [stderr_path] equal to [stdout_path] shares one fd.  [limits]
      (default {!no_limits}) applies the usual rlimits between fork and
      exec.  Chaos misbehaviours never fire here: a supervised server is
      made to misbehave through its own fault points, not the spawn. *)

  val pid : t -> int

  val poll : t -> Unix.process_status option
  (** Non-blocking: [None] while running, the latched exit status once
      gone.  Never raises or blocks; never returns [None] after having
      returned [Some]. *)

  val running : t -> bool

  val signal : t -> int -> unit
  (** Best-effort [kill]: a no-op once the child has been reaped (so a
      recycled pid is never signalled) or when the kernel refuses. *)

  val kill : t -> unit
  (** [signal t Sys.sigkill]. *)

  val terminate : ?grace_ms:float -> t -> Unix.process_status
  (** SIGTERM, wait up to [grace_ms] (default 2000) for a clean exit,
      SIGKILL past it, then reap.  Idempotent; returns the (possibly
      already latched) status. *)
end

(** {1 Crash forensics} *)

val save_crash_artifact :
  dir:string ->
  ?seed:int ->
  toolchain:string ->
  diag:Diag.t ->
  Pipeline.t ->
  (string, string) result
(** Persist the failing pipeline as a fuzz-corpus-compatible [.pipe]
    file under [dir]: '#' header comments (seed, oracle
    ["exec-supervisor"], a single-line detail carrying the diagnostic
    and toolchain id) followed by the unparsed DSL source, named by the
    16-char structural-fingerprint prefix.  Idempotent per pipeline;
    returns the path.  [kfusec fuzz --corpus dir] replays and shrinks
    these like any fuzzer finding. *)

(** {1 Per-fingerprint circuit breaker}

    Consulted by the service before running a plan natively.  A plan
    that fails {!val:Breaker.threshold} consecutive times trips to
    [Open] (quarantined); after [cooldown_ms] one request is let through
    as a half-open {!Breaker.Probe} — success closes the breaker,
    failure re-arms the cooldown.  Thread-safe. *)
module Breaker : sig
  type t

  (** What the service should do with a fingerprint. *)
  type verdict =
    | Allow  (** closed: run natively *)
    | Probe  (** half-open: run natively; the outcome decides the state *)
    | Quarantined of Diag.t
        (** open: skip native, degrade to the interpreter; the payload
            is the diagnostic that tripped the breaker *)

  val create : ?threshold:int -> ?cooldown_ms:float -> unit -> t
  (** [threshold] (default 3) consecutive failures trip the breaker;
      [cooldown_ms] (default 60 000) is the quarantine period before a
      half-open probe ([<= 0.] disables probing entirely). *)

  val threshold : t -> int

  val check : t -> string -> verdict

  val record_failure : t -> string -> Diag.t -> bool
  (** Count a native failure for a fingerprint; [true] exactly when this
      call tripped the breaker open (the caller bumps the
      [quarantined_plans] gauge on that edge). *)

  val record_success : t -> string -> bool
  (** Reset the failure count; [true] exactly when this call closed an
      open breaker (successful half-open probe). *)

  val quarantined : t -> int
  (** Number of currently open (quarantined) fingerprints. *)

  val reset : t -> string -> unit
  val reset_all : t -> unit
end
