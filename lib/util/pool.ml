(* Batch-parallel domain pool.

   One mutex guards everything: the current batch, its self-scheduling
   index counter, and the live-task count.  Workers block on [work]
   between batches; the submitter blocks on [finished] until the batch
   drains.  Tasks write results into caller-owned slots indexed by task
   id, which is what makes every operation deterministic: scheduling
   decides only *who* computes a slot, never *what* ends up in it. *)

type batch = {
  body : int -> unit;
  total : int;
  chunk : int;
  mutable next : int;  (* next index to hand out *)
  mutable live : int;  (* chunks handed out but not yet finished *)
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
      (* lowest-index failure so far *)
}

type state = {
  m : Mutex.t;
  work : Condition.t;  (* workers: new batch or shutdown *)
  finished : Condition.t;  (* submitter: batch drained *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

type t = Serial | Pool of { n : int; st : state }

let serial = Serial
let default_size () = Domain.recommended_domain_count ()
let size = function Serial -> 1 | Pool { n; _ } -> n

(* Worker domains spawned but not yet joined, across all pools.  Tests
   use this to prove no domain outlives its [with_pool] bracket, even
   when creation fails halfway or a task raises. *)
let live = Atomic.make 0
let live_domains () = Atomic.get live

let record_failure b i exn bt =
  match b.failed with
  | Some (j, _, _) when j <= i -> ()
  | _ -> b.failed <- Some (i, exn, bt)

(* Take chunks from [b] until its counter is exhausted.  Called (and
   returns) with [st.m] held. *)
let drain st b =
  while b.next < b.total do
    let lo = b.next in
    let hi = min (lo + b.chunk) b.total in
    b.next <- hi;
    b.live <- b.live + 1;
    Mutex.unlock st.m;
    let failure =
      try
        for i = lo to hi - 1 do
          Faults.hit "pool.task";
          b.body i
        done;
        None
      with exn -> Some (exn, Printexc.get_raw_backtrace ())
    in
    Mutex.lock st.m;
    (match failure with
    | None -> ()
    | Some (exn, bt) -> record_failure b lo exn bt);
    b.live <- b.live - 1;
    if b.next >= b.total && b.live = 0 then Condition.broadcast st.finished
  done

let worker st =
  Mutex.lock st.m;
  let rec loop () =
    if st.stop then Mutex.unlock st.m
    else
      match st.batch with
      | Some b when b.next < b.total ->
        drain st b;
        loop ()
      | Some _ | None ->
        Condition.wait st.work st.m;
        loop ()
  in
  loop ()

let join_all st workers =
  Mutex.lock st.m;
  st.stop <- true;
  Condition.broadcast st.work;
  Mutex.unlock st.m;
  List.iter
    (fun d ->
      Domain.join d;
      Atomic.decr live)
    workers

let create n =
  if n < 1 then invalid_arg "Pool.create: size must be >= 1";
  if n = 1 then Serial
  else begin
    let st =
      {
        m = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        batch = None;
        stop = false;
        workers = [||];
      }
    in
    (* Spawn one at a time so a failure partway (the runtime's domain
       limit, or an injected fault) can stop and join the domains already
       running instead of orphaning them. *)
    let spawned = ref [] in
    (try
       for _ = 1 to n - 1 do
         Faults.hit "pool.spawn";
         let d = Domain.spawn (fun () -> worker st) in
         Atomic.incr live;
         spawned := d :: !spawned
       done
     with exn ->
       let bt = Printexc.get_raw_backtrace () in
       join_all st !spawned;
       Printexc.raise_with_backtrace exn bt);
    st.workers <- Array.of_list (List.rev !spawned);
    Pool { n; st }
  end

let shutdown = function
  | Serial -> ()
  | Pool { st; _ } ->
    Mutex.lock st.m;
    let workers = Array.to_list st.workers in
    st.workers <- [||];
    Mutex.unlock st.m;
    join_all st workers

let with_pool n f =
  let t = create n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_serial ~n body =
  for i = 0 to n - 1 do
    Faults.hit "pool.task";
    body i
  done

let run t ?(chunk = 1) ~n body =
  if chunk < 1 then invalid_arg "Pool.run: chunk must be >= 1";
  if n > 0 then
    match t with
    | Serial -> run_serial ~n body
    | Pool { st; _ } ->
      Mutex.lock st.m;
      if st.stop || st.batch <> None then begin
        (* Shut down, or already inside a parallel region (a task of the
           current batch re-entered the pool): degrade to serial rather
           than deadlock. *)
        Mutex.unlock st.m;
        run_serial ~n body
      end
      else begin
        let b = { body; total = n; chunk; next = 0; live = 0; failed = None } in
        st.batch <- Some b;
        Condition.broadcast st.work;
        drain st b;
        while b.live > 0 do
          Condition.wait st.finished st.m
        done;
        st.batch <- None;
        Mutex.unlock st.m;
        match b.failed with
        | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
        | None -> ()
      end

let init t n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run t ~n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_array t f a = init t (Array.length a) (fun i -> f a.(i))
let map_list t f l = Array.to_list (map_array t f (Array.of_list l))
