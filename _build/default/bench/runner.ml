(* Shared plumbing for the experiment harness: build each application's
   three implementations (baseline / basic / optimized, as in Section V-C)
   and measure them on each GPU model. *)

module F = Kfuse_fusion
module G = Kfuse_gpu
module Ir = Kfuse_ir
module Iset = Kfuse_util.Iset
module Stats = Kfuse_util.Stats

let config = F.Config.default

type impl = Baseline | Basic | Optimized

let impl_names = [ (Baseline, "baseline"); (Basic, "basic"); (Optimized, "optimized") ]

let strategy_of_impl = function
  | Baseline -> F.Driver.Baseline
  | Basic -> F.Driver.Basic
  | Optimized -> F.Driver.Mincut

let quality_of_impl = function
  | Baseline | Optimized -> G.Perf_model.Optimized
  | Basic -> G.Perf_model.Basic_codegen

let fused_names (p : Ir.Pipeline.t) (r : F.Driver.report) =
  List.filter_map
    (fun b ->
      if Iset.cardinal b >= 2 then
        Some
          (Ir.Pipeline.kernel p (Iset.min_elt (F.Legality.block_sinks p b))).Ir.Kernel.name
      else None)
    r.F.Driver.partition

(* Measurements are cached per (app, impl, device): fig6, tab1 and tab2
   all read the same cells. *)
let cache : (string * string * string, G.Sim.measurement) Hashtbl.t = Hashtbl.create 64

let measure ?(runs = 500) (app : Kfuse_apps.Registry.entry) impl (device : G.Device.t) =
  let impl_name = List.assoc impl impl_names in
  let key = (app.Kfuse_apps.Registry.name, impl_name, device.G.Device.name) in
  match Hashtbl.find_opt cache key with
  | Some m -> m
  | None ->
    let p = app.Kfuse_apps.Registry.pipeline () in
    let r = F.Driver.run config (strategy_of_impl impl) p in
    let m =
      G.Sim.measure ~runs device ~quality:(quality_of_impl impl)
        ~fused_kernels:(fused_names p r) r.F.Driver.fused
    in
    Hashtbl.replace cache key m;
    m

let median app impl device = (measure app impl device).G.Sim.summary.Stats.median

let speedup app num den device = median app den device /. median app num device

let app entry_name =
  match Kfuse_apps.Registry.find entry_name with
  | Some e -> e
  | None -> failwith ("unknown app " ^ entry_name)

let all_apps = Kfuse_apps.Registry.all
let all_devices = G.Device.all

let hrule width = String.make width '-'
