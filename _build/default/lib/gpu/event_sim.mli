(** Discrete-event GPU execution simulator.

    A finer-grained alternative to the analytic roofline of
    {!Perf_model}: kernels launch a grid of thread blocks; each SM hosts
    as many resident blocks as occupancy allows; every resident block
    drains a compute demand (against its SM's shared throughput) and a
    memory demand (against the device's shared bandwidth) {e in
    parallel} — a fluid processor-sharing model in which latency hiding
    emerges from the overlap rather than being assumed by a [max].

    Two block classes are distinguished: interior blocks, and border
    blocks whose pixels include the halo region of local kernels and
    therefore pay extra border-handling work (index clamping / exchange)
    — so, unlike the roofline, the simulated time depends on the
    interior/halo split of Section IV-B and grows when images shrink.

    The simulator is deterministic and is used by the `eventsim`
    benchmark to cross-validate the roofline model; the 500-run noise
    simulation of Figure 6 stays with {!Sim}. *)

type kernel_result = {
  kernel_name : string;
  blocks : int;  (** grid size *)
  t_ms : float;  (** simulated kernel time *)
  drain_events : int;  (** resource-drain events processed *)
}

type result = {
  total_ms : float;  (** end-to-end pipeline time incl. launch overheads *)
  kernels : kernel_result list;
}

(** [run ?params device ~quality ~fused_kernels pipeline] simulates the
    pipeline's kernels back to back.  Parameters mirror
    {!Perf_model.pipeline_time}. *)
val run :
  ?params:Perf_model.params ->
  Device.t ->
  quality:Perf_model.quality ->
  fused_kernels:string list ->
  Kfuse_ir.Pipeline.t ->
  result
