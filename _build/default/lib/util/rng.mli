(** Deterministic pseudo-random number generation.

    A small, self-contained xoshiro256** generator.  Every stochastic
    component of the reproduction (measurement-noise sampling, random test
    images, random pipelines in property tests) draws from an explicit
    generator state so that all experiments are bit-reproducible. *)

type t
(** Mutable generator state. *)

(** [create seed] seeds a fresh generator deterministically from [seed]
    (SplitMix64 expansion of the seed). *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a new, statistically independent generator from [t],
    advancing [t]. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)
val int : t -> int -> int

(** [float t x] is uniform in [\[0, x)]. *)
val float : t -> float -> float

(** [gaussian t] is a standard normal sample (Box-Muller). *)
val gaussian : t -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool
