lib/apps/extra.ml: Array Kfuse_image Kfuse_ir List Night Printf
