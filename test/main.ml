(* Aggregate test runner: `dune runtest`. *)

let () =
  Alcotest.run "kfuse"
    [
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("graph", Test_graph.suite);
      ("stoer-wagner", Test_stoer_wagner.suite);
      ("karger", Test_karger.suite);
      ("image", Test_image.suite);
      ("pgm", Test_pgm.suite);
      ("ir", Test_ir.suite);
      ("footprint", Test_footprint.suite);
      ("opt", Test_opt.suite);
      ("legality", Test_legality.suite);
      ("benefit", Test_benefit.suite);
      ("transform", Test_transform.suite);
      ("substitute", Test_substitute.suite);
      ("conv-match", Test_conv_match.suite);
      ("fusion-algorithms", Test_fusion_algos.suite);
      ("exhaustive", Test_exhaustive.suite);
      ("inline", Test_inline.suite);
      ("distribute", Test_distribute.suite);
      ("gpu", Test_gpu.suite);
      ("event-sim", Test_event_sim.suite);
      ("codegen", Test_codegen.suite);
      ("codegen-exec", Test_codegen_exec.suite);
      ("exec", Test_exec.suite);
      ("dot", Test_dot.suite);
      ("dsl", Test_dsl.suite);
      ("unparse", Test_unparse.suite);
      ("apps", Test_apps.suite);
      ("extra-apps", Test_extra_apps.suite);
      ("integration", Test_integration.suite);
      ("properties", Test_properties.suite);
      ("validate", Test_validate.suite);
      ("faults", Test_faults.suite);
      ("cache", Test_cache.suite);
      ("service", Test_service.suite);
      ("topology", Test_topology.suite);
      ("chaos", Test_chaos.suite);
      ("stream", Test_stream.suite);
      ("lazy", Test_lazy.suite);
      ("fuzz", Test_fuzz.suite);
      ("cli", Test_cli.suite);
    ]
