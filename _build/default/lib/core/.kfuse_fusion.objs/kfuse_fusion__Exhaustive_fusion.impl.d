lib/core/exhaustive_fusion.ml: Benefit Config Kfuse_graph Kfuse_ir Kfuse_util List Mincut_fusion Printf
