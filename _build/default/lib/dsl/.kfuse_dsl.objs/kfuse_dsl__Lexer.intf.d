lib/dsl/lexer.mli: Ast
