(** CPU (C + OpenMP) backend.

    The paper's conclusion lists CPU targets as future work; this backend
    provides it.  Each kernel lowers to a plain C function that iterates
    the image under an OpenMP [parallel for] (collapsed over both loop
    dimensions); global reductions use OpenMP reduction clauses instead
    of the CUDA backend's float atomics.  Expression lowering — including
    fusion's registers and index exchange — is shared with the CUDA
    backend via {!Lower_common}. *)

(** [kernel_func ?tile pipeline kernel] lowers one kernel to a C function
    named [<pipeline>_<kernel>].  With [tile = (tx, ty)] the iteration
    space is blocked into [tx x ty] tiles (classic loop tiling — the
    locality transform Figure 1 of the paper places alongside fusion):
    the OpenMP [parallel for] distributes tiles, and the pixel loops run
    within one tile so a stencil's working set stays cache-resident.
    Reductions are never tiled.
    @raise Invalid_argument on nonpositive tile extents. *)
val kernel_func : ?tile:int * int -> Kfuse_ir.Pipeline.t -> Kfuse_ir.Kernel.t -> Cuda_ast.func

(** [emit_pipeline ?tile pipeline] renders a complete [.c] translation
    unit: helpers, one function per kernel, and a [run_<name>] driver
    allocating intermediates with [malloc]. *)
val emit_pipeline : ?tile:int * int -> Kfuse_ir.Pipeline.t -> string
