(* The sharded kfused topology, end to end over real processes: a
   Router running in this process supervising kfusec-serve shard
   subprocesses.  Exercises the robustness contract from the outside:

   - SIGKILL of a shard under retrying client load yields zero
     non-typed client failures, the supervisor restarts it (counted in
     [shard_restarts]), and requests homed on the dead shard reroute to
     a neighbor with the KF0807 annotation — replies staying
     bit-identical (modulo cache provenance) to a single server's;
   - N concurrent identical cold fuse requests coalesce into exactly
     one plan search (single-flight), all N replies byte-identical;
   - stream ids are shard-prefixed and pinned;
   - a crashed fleet's stale sockets are reclaimed on restart. *)

module Svc = Kfuse_service
module Jsonx = Svc.Jsonx
module Protocol = Svc.Protocol
module Cache = Kfuse_cache
module Diag = Kfuse_util.Diag

let kfusec = "../bin/kfusec.exe"

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kfuse-topo-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o700;
  d

let temp_socket () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "kfuse-topo-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))

(* Small supervision knobs so crash → respawn → ready fits in test time. *)
let fast_config =
  {
    Svc.Shard.default_config with
    Svc.Shard.restart_backoff_ms = 50.;
    storm_window_ms = 1_000.;
    dead_cooldown_ms = 2_000.;
  }

let with_fleet ?(count = 2) ?(faults = "") f =
  let dir = temp_dir () in
  let socket = temp_socket () in
  (* Shards are real kfusec-serve processes; they inherit the
     environment, so KFUSE_FAULTS arms fault points in the shards
     without touching this process's registry. *)
  Unix.putenv "KFUSE_FAULTS" faults;
  let shard_argv ~index:_ ~socket =
    [
      kfusec; "serve"; "--socket"; socket; "--cache-dir"; Filename.concat dir "cache";
      "--max-conns"; "8";
    ]
  in
  match
    Svc.Router.start ~socket ~dir ~count ~shard_argv ~shard_config:fast_config
      ~health_interval_ms:50. ~health_timeout_ms:500. ~request_timeout_ms:20_000. ()
  with
  | Error d -> Alcotest.failf "fleet start failed: %s" (Diag.to_string d)
  | Ok router ->
    Fun.protect
      ~finally:(fun () ->
        Svc.Router.stop router;
        Unix.putenv "KFUSE_FAULTS" "")
      (fun () ->
        if not (Svc.Router.await_ready ~timeout_ms:15_000. router) then
          Alcotest.fail "fleet did not become ready";
        f socket router)

let fuse_req app =
  {
    Protocol.app = Some app;
    source = None;
    strategy = Kfuse_fusion.Driver.Mincut;
    c_mshared = None;
    gamma = None;
    tg = None;
    optimize = false;
    inline = false;
    strict = false;
    budget_ms = None;
    no_cache = false;
  }

let field name v =
  match Jsonx.member name v with
  | Some f -> f
  | None -> Alcotest.failf "response lacks %S: %s" name (Jsonx.to_string v)

(* Strip the fields that legitimately differ between a single server
   and a (possibly rerouted) fleet reply: cache provenance and timing,
   plus the router's reroute annotation.  Everything else — partition,
   objective, warnings — must be bit-identical. *)
let normalize reply =
  match reply with
  | Jsonx.Obj fields ->
    Jsonx.Obj
      (List.filter
         (fun (k, _) ->
           not (List.mem k [ "plan_ms"; "cached"; "outcome"; "router" ]))
         fields)
  | v -> v

(* The router's keyspace map, reproduced from its documented contract:
   leading 32 bits of the structural fingerprint, mod the fleet size. *)
let home_shard req ~count =
  match Svc.Server.load_pipeline req with
  | Error d -> Alcotest.failf "load_pipeline: %s" (Diag.to_string d)
  | Ok p ->
    let s = Cache.Fingerprint.structural p in
    let h =
      match int_of_string_opt ("0x" ^ String.sub s 0 8) with
      | Some v -> v
      | None -> Alcotest.failf "unexpected fingerprint %S" s
    in
    abs h mod count

let shard_pid router i =
  match Svc.Shard.pid (Svc.Router.shards router).(i) with
  | Some pid -> pid
  | None -> Alcotest.failf "shard %d has no pid" i

(* ---- basics ---- *)

let test_fleet_basics () =
  with_fleet ~count:2 @@ fun socket router ->
  (match Svc.Client.call ~socket Protocol.Ping with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "ping: %s" (Diag.to_string d));
  let stats =
    match Svc.Client.call ~socket Protocol.Stats with
    | Ok v -> v
    | Error d -> Alcotest.failf "stats: %s" (Diag.to_string d)
  in
  Alcotest.(check bool) "role is router" true (field "role" stats = Jsonx.Str "router");
  (match field "shards" stats with
  | Jsonx.Arr l -> Alcotest.(check int) "two shards" 2 (List.length l)
  | _ -> Alcotest.fail "stats lack shard array");
  let reply =
    match Svc.Client.call ~socket (Protocol.Fuse (fuse_req "harris")) with
    | Ok v -> v
    | Error d -> Alcotest.failf "fuse: %s" (Diag.to_string d)
  in
  Alcotest.(check bool) "6 fused kernels" true (field "kernels_out" reply = Jsonx.Num 6.0);
  let m = Svc.Router.metrics router in
  Alcotest.(check int) "one request routed" 1 (Svc.Metrics.counter m "requests_routed");
  match Svc.Client.call ~socket Protocol.Metrics with
  | Error d -> Alcotest.failf "metrics: %s" (Diag.to_string d)
  | Ok v -> (
    match Jsonx.mem_str "text" v with
    | Some text ->
      let has needle =
        let nl = String.length needle and tl = String.length text in
        let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "exposition names the fleet counters" true
        (has "kfused_requests_routed_total" && has "kfused_shards_up")
    | None -> Alcotest.fail "metrics reply lacks text")

(* ---- failover under load ---- *)

let test_failover_under_storm () =
  with_fleet ~count:4 @@ fun socket router ->
  let req = Protocol.Fuse (fuse_req "harris") in
  let home = home_shard (fuse_req "harris") ~count:4 in
  (* Baseline: what a single server says for the same request. *)
  let baseline =
    let ssock = temp_socket () in
    let cache = Cache.Plan_cache.create () in
    Kfuse_util.Pool.with_pool 2 (fun pool ->
        match Svc.Server.start ~socket:ssock ~cache ~pool () with
        | Error d -> Alcotest.failf "baseline server: %s" (Diag.to_string d)
        | Ok server ->
          Fun.protect
            ~finally:(fun () -> Svc.Server.stop server)
            (fun () ->
              match Svc.Client.call ~socket:ssock req with
              | Ok v -> Jsonx.to_string (normalize v)
              | Error d -> Alcotest.failf "baseline fuse: %s" (Diag.to_string d)))
  in
  let clients = 6 and per_client = 8 in
  let results = Array.make clients [] in
  let failures = Array.make clients [] in
  let threads =
    Array.init clients (fun i ->
        Thread.create
          (fun () ->
            for _ = 1 to per_client do
              (match
                 Svc.Client.call ~socket
                   ~retry:{ Svc.Client.default_retry with attempts = 10; seed = i }
                   req
               with
              | Ok v -> results.(i) <- Jsonx.to_string (normalize v) :: results.(i)
              | Error d -> failures.(i) <- d :: failures.(i)
              | exception exn ->
                Alcotest.failf "non-typed client failure: %s" (Printexc.to_string exn));
              Thread.delay 0.01
            done)
          ())
  in
  (* Kill the home shard mid-storm: requests in flight against it must
     fail over to a neighbor, the supervisor must respawn it. *)
  Thread.delay 0.03;
  Unix.kill (shard_pid router home) Sys.sigkill;
  Array.iter Thread.join threads;
  Array.iteri
    (fun i fs ->
      List.iter
        (fun d -> Alcotest.failf "client %d saw %s" i (Diag.to_string d))
        fs)
    failures;
  let all = Array.to_list results |> List.concat in
  Alcotest.(check int) "every request answered" (clients * per_client) (List.length all);
  List.iter
    (fun r -> Alcotest.(check string) "reply identical to single server" baseline r)
    all;
  let m = Svc.Router.metrics router in
  Alcotest.(check bool) "requests rerouted off the dead shard" true
    (Svc.Metrics.counter m "requests_rerouted" >= 1);
  (* The clients are done before the supervisor's respawn necessarily
     lands (tick + backoff + spawn); give it a bounded settling window,
     then require both the restart count and a routable shard. *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec settle () =
    let s = (Svc.Router.shards router).(home) in
    let recovered =
      Svc.Metrics.counter m "shard_restarts" >= 1
      && match Svc.Shard.state s with Svc.Shard.Up -> true | _ -> false
    in
    if recovered then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "shard %d never came back (state %s, %d restarts)" home
        (Svc.Shard.state_string s)
        (Svc.Metrics.counter m "shard_restarts")
    else begin
      Thread.delay 0.05;
      settle ()
    end
  in
  settle ()

(* A rerouted reply must carry the typed degraded-locality warning. *)
let test_reroute_annotation () =
  with_fleet ~count:2 @@ fun socket router ->
  let req = Protocol.Fuse (fuse_req "harris") in
  let home = home_shard (fuse_req "harris") ~count:2 in
  (* Warm the shared disk cache so the reroute is served, then kill the
     home shard and ask again before the supervisor can respawn it. *)
  (match Svc.Client.call ~socket req with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "warm fuse: %s" (Diag.to_string d));
  Unix.kill (shard_pid router home) Sys.sigkill;
  let reply =
    match Svc.Client.call ~socket req with
    | Ok v -> v
    | Error d -> Alcotest.failf "fuse after kill: %s" (Diag.to_string d)
  in
  (match Jsonx.member "router" reply with
  | Some r ->
    Alcotest.(check bool) "marked rerouted" true
      (Jsonx.mem_bool "rerouted" r = Some true);
    (match Jsonx.mem_str "warning" r with
    | Some w ->
      Alcotest.(check bool) "KF0807 warning" true
        (String.length w >= 6 && String.sub w 0 7 = "warning")
    | None -> Alcotest.fail "reroute lacks warning")
  | None ->
    (* The supervisor may have respawned the home shard between the kill
       and the request (50 ms backoff): then the reply is served at home
       with no annotation, which is also a correct outcome — but the
       kill must at least be visible to the supervisor eventually. *)
    ());
  ignore router

(* ---- single flight ---- *)

let test_single_flight () =
  (* Every shard reply is delayed 50 ms (proto.slow_write armed in the
     shard process via the environment), so 8 requests fired together
     all arrive while the leader's flight is still open. *)
  with_fleet ~count:1 ~faults:"proto.slow_write/1" @@ fun socket router ->
  let req = Protocol.Fuse (fuse_req "harris") in
  let n = 8 in
  let replies = Array.make n "" in
  let threads =
    Array.init n (fun i ->
        Thread.create
          (fun () ->
            match Svc.Client.call ~socket req with
            | Ok v -> replies.(i) <- Jsonx.to_string v
            | Error d -> Alcotest.failf "client %d: %s" i (Diag.to_string d))
          ())
  in
  Array.iter Thread.join threads;
  Array.iter
    (fun r ->
      Alcotest.(check string) "all replies byte-identical" replies.(0) r)
    replies;
  let m = Svc.Router.metrics router in
  Alcotest.(check int) "one upstream request" 1 (Svc.Metrics.counter m "requests_routed");
  Alcotest.(check int) "the rest coalesced" (n - 1)
    (Svc.Metrics.counter m "requests_coalesced");
  (* The shard's own cache agrees: exactly one plan search happened. *)
  let shard_socket = Svc.Shard.socket (Svc.Router.shards router).(0) in
  match Svc.Client.with_connection ~socket:shard_socket (fun c -> Svc.Client.stats c) with
  | Error d -> Alcotest.failf "shard stats: %s" (Diag.to_string d)
  | Ok stats ->
    let cache = field "cache" stats in
    Alcotest.(check bool) "exactly one plan computed" true
      (field "misses" cache = Jsonx.Num 1.0);
    Alcotest.(check bool) "no shard-side hits" true (field "hits" cache = Jsonx.Num 0.0)

(* Distinct requests must not coalesce. *)
let test_single_flight_distinct_keys () =
  with_fleet ~count:1 ~faults:"proto.slow_write/1" @@ fun socket router ->
  let reqs = [| Protocol.Fuse (fuse_req "harris"); Protocol.Fuse (fuse_req "sobel") |] in
  let threads =
    Array.map
      (fun req ->
        Thread.create
          (fun () ->
            match Svc.Client.call ~socket req with
            | Ok _ -> ()
            | Error d -> Alcotest.failf "fuse: %s" (Diag.to_string d))
          ())
      reqs
  in
  Array.iter Thread.join threads;
  let m = Svc.Router.metrics router in
  Alcotest.(check int) "nothing coalesced" 0 (Svc.Metrics.counter m "requests_coalesced");
  Alcotest.(check int) "both routed" 2 (Svc.Metrics.counter m "requests_routed")

(* ---- streams ---- *)

let require_toolchain () =
  match Kfuse_exec.Toolchain.find () with Error _ -> Alcotest.skip () | Ok _ -> ()

let test_stream_pinning () =
  require_toolchain ();
  with_fleet ~count:2 @@ fun socket _router ->
  let open_req =
    {
      Protocol.fuse = fuse_req "harris";
      exec_mode = None;
      width = Some 64;
      height = Some 64;
      seed = 7;
    }
  in
  let reply =
    match Svc.Client.call ~socket (Protocol.Stream_open open_req) with
    | Ok v -> v
    | Error d -> Alcotest.failf "stream_open: %s" (Diag.to_string d)
  in
  let id =
    match Jsonx.mem_str "id" reply with
    | Some id -> id
    | None -> Alcotest.failf "stream_open reply lacks id: %s" (Jsonx.to_string reply)
  in
  Alcotest.(check bool) "id is shard-prefixed" true
    (String.length id > 2 && id.[0] = 's' && String.contains id '-');
  (* Pushes route through the prefix back to the owning shard. *)
  (match
     Svc.Client.call ~socket
       (Protocol.Stream_push { Protocol.id; verify = false; return_pixels = false })
   with
  | Ok v ->
    Alcotest.(check bool) "push answered by the pinned shard" true
      (Jsonx.mem_str "status" v = Some "ok")
  | Error d -> Alcotest.failf "stream_push: %s" (Diag.to_string d));
  (* A server-shaped id the router never issued is a typed error. *)
  (match
     Svc.Client.call ~socket
       (Protocol.Stream_push { Protocol.id = "st-0"; verify = false; return_pixels = false })
   with
  | Ok _ -> Alcotest.fail "foreign stream id should be rejected"
  | Error d ->
    Alcotest.(check bool) "typed stream error" true (d.Diag.code = Diag.Stream_unknown));
  match Svc.Client.call ~socket (Protocol.Stream_close id) with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "stream_close: %s" (Diag.to_string d)

(* ---- stale socket reclaim ---- *)

let test_fleet_socket_sweep () =
  let dir = temp_dir () in
  (* A crashed fleet's leavings: stale bound-but-dead sockets for the
     shards we will reuse, plus one from a previously larger fleet. *)
  List.iter
    (fun path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.close fd)
    [ Svc.Shard.socket_path ~dir 0; Svc.Shard.socket_path ~dir 7 ];
  (match Svc.Shard.sweep_sockets ~dir ~count:2 with
  | Ok () -> ()
  | Error d -> Alcotest.failf "sweep failed: %s" (Diag.to_string d));
  Alcotest.(check bool) "stale shard-0 socket reclaimed" false
    (Sys.file_exists (Svc.Shard.socket_path ~dir 0));
  Alcotest.(check bool) "leftover shard-7 socket reclaimed" false
    (Sys.file_exists (Svc.Shard.socket_path ~dir 7));
  (* A live listener is refused, not stolen. *)
  let live = Svc.Shard.socket_path ~dir 1 in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX live);
  Unix.listen fd 1;
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      match Svc.Shard.sweep_sockets ~dir ~count:2 with
      | Ok () -> Alcotest.fail "sweep should refuse a live listener"
      | Error _ -> ())

let suite =
  [
    Alcotest.test_case "fleet basics" `Slow test_fleet_basics;
    Alcotest.test_case "failover under storm" `Slow test_failover_under_storm;
    Alcotest.test_case "reroute annotation" `Slow test_reroute_annotation;
    Alcotest.test_case "single flight" `Slow test_single_flight;
    Alcotest.test_case "single flight distinct keys" `Slow test_single_flight_distinct_keys;
    Alcotest.test_case "stream pinning" `Slow test_stream_pinning;
    Alcotest.test_case "fleet socket sweep" `Quick test_fleet_socket_sweep;
  ]
