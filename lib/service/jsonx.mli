(** A minimal JSON codec for the [kfused] wire protocol.

    Self-contained (the container ships no JSON library) and small on
    purpose: values, an encoder, a strict recursive-descent parser, and
    the handful of accessors the protocol needs.  Numbers are OCaml
    floats; integral values encode without a fractional part.  Strings
    are arbitrary bytes: control characters encode as [\uXXXX] escapes,
    and parsed [\uXXXX] escapes decode to UTF-8 (surrogate pairs
    included). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [to_string v] is the compact (no-whitespace) JSON rendering. *)
val to_string : t -> string

(** [of_string s] parses exactly one JSON value spanning all of [s]
    (trailing whitespace allowed). *)
val of_string : string -> (t, string) result

(** {1 Accessors} — total, [None] on shape mismatch. *)

(** [member name v] is field [name] of an [Obj]. *)
val member : string -> t -> t option

val str : t -> string option
val num : t -> float option
val bool : t -> bool option
val arr : t -> t list option

(** [mem_str name v] / [mem_num name v] / [mem_bool name v] compose
    {!member} with the scalar accessors. *)
val mem_str : string -> t -> string option

val mem_num : string -> t -> float option
val mem_bool : string -> t -> bool option
