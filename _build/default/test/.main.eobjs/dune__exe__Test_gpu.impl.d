test/test_gpu.ml: Alcotest Float Helpers Kfuse_gpu Kfuse_image Kfuse_ir Kfuse_util List
