lib/dsl/unparse.ml: Array Buffer Float Kfuse_image Kfuse_ir List Printf String
