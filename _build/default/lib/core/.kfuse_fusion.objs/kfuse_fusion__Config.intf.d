lib/core/config.mli: Kfuse_ir
