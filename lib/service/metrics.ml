module Stats = Kfuse_util.Stats
module Plan_cache = Kfuse_cache.Plan_cache

type per_op = {
  mutable total : int;
  mutable errors : int;
  reservoir : Stats.reservoir;
}

type t = {
  lock : Mutex.t;
  by_op : (string, per_op) Hashtbl.t;
  counters : (string, int) Hashtbl.t;
  gauges : (string, int) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    by_op = Hashtbl.create 8;
    counters = Hashtbl.create 8;
    gauges = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let get_op t op =
  match Hashtbl.find_opt t.by_op op with
  | Some p -> p
  | None ->
    (* 1024 samples bounds memory while keeping tail quantiles stable. *)
    let p = { total = 0; errors = 0; reservoir = Stats.reservoir 1024 } in
    Hashtbl.replace t.by_op op p;
    p

let observe t ~op ~ok ms =
  locked t @@ fun () ->
  let p = get_op t op in
  p.total <- p.total + 1;
  if not ok then p.errors <- p.errors + 1;
  Stats.add p.reservoir ms

let incr t name =
  locked t @@ fun () ->
  Hashtbl.replace t.counters name (1 + Option.value ~default:0 (Hashtbl.find_opt t.counters name))

let counter t name =
  locked t @@ fun () -> Option.value ~default:0 (Hashtbl.find_opt t.counters name)

(* Pre-seeding a counter at 0 keeps it visible in the exposition before
   its first event: an operator (or a CI grep) can tell "never shed"
   from "not instrumented". *)
let touch t name =
  locked t @@ fun () ->
  if not (Hashtbl.mem t.counters name) then Hashtbl.replace t.counters name 0

let adjust_gauge t name delta =
  locked t @@ fun () ->
  Hashtbl.replace t.gauges name (delta + Option.value ~default:0 (Hashtbl.find_opt t.gauges name))

let incr_gauge t name = adjust_gauge t name 1
let decr_gauge t name = adjust_gauge t name (-1)

let gauge t name =
  locked t @@ fun () -> Option.value ~default:0 (Hashtbl.find_opt t.gauges name)

let ops t =
  locked t @@ fun () ->
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.by_op [])

let latency t op =
  locked t @@ fun () -> Option.bind (Hashtbl.find_opt t.by_op op) (fun p -> Stats.quantiles p.reservoir)

let requests t op =
  locked t
  @@ fun () ->
  match Hashtbl.find_opt t.by_op op with Some p -> (p.total, p.errors) | None -> (0, 0)

let render t ~cache ~uptime_s =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "# kfused metrics (text exposition)";
  line "kfused_uptime_seconds %.3f" uptime_s;
  locked t (fun () ->
      let counters =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters [])
      in
      List.iter (fun (k, v) -> line "kfused_%s_total %d" k v) counters;
      let gauges =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.gauges [])
      in
      List.iter (fun (k, v) -> line "kfused_%s %d" k v) gauges;
      let ops = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.by_op []) in
      List.iter
        (fun op ->
          let p = Hashtbl.find t.by_op op in
          line "kfused_requests_total{op=%S} %d" op p.total;
          line "kfused_request_errors_total{op=%S} %d" op p.errors;
          match Stats.quantiles p.reservoir with
          | None -> ()
          | Some q ->
            List.iter
              (fun (name, v) -> line "kfused_request_latency_ms{op=%S,quantile=%S} %.4f" op name v)
              [
                ("0.5", q.Stats.p50);
                ("0.9", q.Stats.p90);
                ("0.95", q.Stats.p95);
                ("0.99", q.Stats.p99);
              ];
            line "kfused_request_latency_ms_max{op=%S} %.4f" op q.Stats.q_max;
            line "kfused_request_latency_ms_mean{op=%S} %.4f" op q.Stats.q_mean)
        ops);
  let c = cache in
  line "kfused_plan_cache_entries %d" c.Plan_cache.entries;
  line "kfused_plan_cache_capacity %d" c.Plan_cache.capacity;
  line "kfused_plan_cache_hits_total %d" c.Plan_cache.hits;
  line "kfused_plan_cache_disk_hits_total %d" c.Plan_cache.disk_hits;
  line "kfused_plan_cache_misses_total %d" c.Plan_cache.misses;
  line "kfused_plan_cache_iso_misses_total %d" c.Plan_cache.iso_misses;
  line "kfused_plan_cache_evictions_total %d" c.Plan_cache.evictions;
  line "kfused_plan_cache_stores_total %d" c.Plan_cache.stores;
  line "kfused_plan_cache_disk_errors_total %d" c.Plan_cache.disk_errors;
  line "kfused_plan_cache_hit_rate %.4f" (Plan_cache.hit_rate c);
  Buffer.contents buf
