lib/ir/cost.ml: Expr Footprint Kernel List
