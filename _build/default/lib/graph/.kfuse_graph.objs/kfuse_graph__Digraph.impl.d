lib/graph/digraph.ml: Format Kfuse_util List
