(** Per-stream temporal state.

    A session owns the sliding window of past input frames for one
    stream of a temporal pipeline (see {!Kfuse_ir.Temporal}).  The
    window stores pipeline {e inputs}, never outputs, so whatever
    backend executes a frame — the interpreter, a pinned native plan, or
    the interpreter again after a mid-stream quarantine — sees exactly
    the same bindings; cross-backend bit-exactness needs no state
    reconciliation.

    Cold start: a temporal input whose lag reaches past the start of the
    stream is clamped to the oldest frame available, and to the current
    frame itself on frame 0 — a motion stream's first frame reports a
    zero delta rather than reading an arbitrary boundary value.

    Sessions are not thread-safe; callers (the [kfused] server)
    serialize pushes per session. *)

type t

val create :
  ?params:(string * float) list -> Kfuse_ir.Pipeline.t -> (t, Kfuse_util.Diag.t) result
(** [create ?params p] errors (per {!Kfuse_ir.Temporal.stream_input})
    unless [p] has exactly one current-frame input.  Non-temporal
    pipelines stream fine with an always-empty window. *)

val pipeline : t -> Kfuse_ir.Pipeline.t
val analysis : t -> Kfuse_ir.Temporal.t
val stream_input : t -> string
val params : t -> (string * float) list

val depth : t -> int
(** Window depth — the maximum temporal lag of the pipeline. *)

val frames : t -> int
(** Frames pushed (i.e. {!advance}d) so far. *)

val bindings : t -> Kfuse_image.Image.t -> (string * Kfuse_image.Image.t) list
(** [bindings t frame] binds exactly the pipeline's inputs: the current
    input to [frame], each temporal input to its (clamped) lagged frame.
    Does not advance the window.
    @raise Invalid_argument on a frame of the wrong extent. *)

val advance : t -> Kfuse_image.Image.t -> unit
(** [advance t frame] pushes [frame] into the window, evicting frames
    older than {!depth}.  Callers advance exactly once per processed
    frame, {e after} executing with {!bindings} — including when the
    execution fell back across backends. *)

val eval : t -> Kfuse_image.Image.t -> (string * Kfuse_image.Image.t) list
(** [eval t frame] runs the interpreter on {!bindings} (no advance). *)

val push : t -> Kfuse_image.Image.t -> (string * Kfuse_image.Image.t) list
(** [push t frame] is {!eval} then {!advance}: the one-call interpreter
    backend used by tests and the fuzz oracle. *)
