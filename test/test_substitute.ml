(* Direct unit tests for Substitute.inline_producers — the producer-body
   substitution underneath both Transform and Inline_fusion.  Each case
   pins one clause of the contract: register sharing for repeated point
   reads, direct inlining for single and in-Shift reads, and Shift
   wrapping (with or without index exchange) for windowed reads. *)

module Expr = Kfuse_ir.Expr
module Substitute = Kfuse_fusion.Substitute
module Border = Kfuse_image.Border

let fresh_counter () =
  let n = ref 0 in
  fun image ->
    incr n;
    Printf.sprintf "%%r%s_%d" image !n

let produced_a body = fun image -> if image = "a" then Some body else None

let producer = Expr.(input "src" * const 2.0)

let inline ?(exchange = true) body =
  Substitute.inline_producers ~exchange ~fresh:(fresh_counter ())
    ~produced:(produced_a producer) body

(* A single point read inlines the producer body directly: binding it
   would cost a register for no sharing. *)
let test_single_point_read_inlines () =
  let body = Expr.(input "a" + const 1.0) in
  Alcotest.(check Helpers.expr) "direct inline"
    Expr.(producer + const 1.0)
    (inline body)

(* Two point reads outside any Shift share one Let-bound register. *)
let test_repeated_point_reads_share_register () =
  let body = Expr.(input "a" * input "a") in
  match inline body with
  | Expr.Let { var; value; body = Expr.Binop (Expr.Mul, Expr.Var v1, Expr.Var v2) } ->
    Alcotest.(check Helpers.expr) "bound value is the producer body" producer value;
    Alcotest.(check string) "left factor reads the register" var v1;
    Alcotest.(check string) "right factor reads the register" var v2
  | e -> Alcotest.failf "expected let-bound register, got %a" Expr.pp e

(* A point read inside a Shift frame evaluates at the shifted position:
   it must inline the body, never share the outer register. *)
let test_point_read_inside_shift_inlines () =
  let body =
    Expr.(
      input "a"
      + input "a"
      + Expr.Shift { dx = 1; dy = 0; exchange = None; body = Expr.input "a" })
  in
  match inline body with
  | Expr.Let { body = Expr.Binop (Expr.Add, _, Expr.Shift { body = shifted; _ }); _ } ->
    Alcotest.(check Helpers.expr) "shifted occurrence re-inlines the producer"
      producer shifted
  | e -> Alcotest.failf "expected let around add with shift, got %a" Expr.pp e

(* A windowed read wraps the producer in a Shift carrying the consumer's
   border mode as index exchange. *)
let test_windowed_read_wraps_shift_with_exchange () =
  let body = Expr.input ~dx:1 ~dy:(-2) ~border:Border.Mirror "a" in
  match inline body with
  | Expr.Shift { dx = 1; dy = -2; exchange = Some Border.Mirror; body } ->
    Alcotest.(check Helpers.expr) "producer body under the shift" producer body
  | e -> Alcotest.failf "expected shift with exchange, got %a" Expr.pp e

(* Without exchange the Shift carries no border: the consumer reads the
   producer's mathematical extension instead of a replayed border. *)
let test_windowed_read_without_exchange () =
  let body = Expr.input ~dx:0 ~dy:3 ~border:Border.Clamp "a" in
  match inline ~exchange:false body with
  | Expr.Shift { dx = 0; dy = 3; exchange = None; body } ->
    Alcotest.(check Helpers.expr) "producer body under the shift" producer body
  | e -> Alcotest.failf "expected shift without exchange, got %a" Expr.pp e

(* Images the [produced] callback does not claim are left untouched. *)
let test_unproduced_images_untouched () =
  let body = Expr.(input "b" + input ~dx:1 ~border:Border.Repeat "c") in
  Alcotest.(check Helpers.expr) "foreign reads survive" body (inline body)

(* Mixed: one image read both at a point (twice) and through a window —
   the point reads share a register while the windowed read recomputes. *)
let test_mixed_point_and_windowed_reads () =
  let body =
    Expr.(input "a" + input "a" + input ~dx:2 ~border:Border.Clamp "a")
  in
  match inline body with
  | Expr.Let
      {
        var;
        value;
        body =
          Expr.Binop
            ( Expr.Add,
              Expr.Binop (Expr.Add, Expr.Var v1, Expr.Var v2),
              Expr.Shift { dx = 2; dy = 0; exchange = Some Border.Clamp; body = shifted }
            );
      } ->
    Alcotest.(check Helpers.expr) "register holds the producer" producer value;
    Alcotest.(check string) "first point read shares" var v1;
    Alcotest.(check string) "second point read shares" var v2;
    Alcotest.(check Helpers.expr) "windowed read recomputes" producer shifted
  | e -> Alcotest.failf "unexpected shape: %a" Expr.pp e

let suite =
  [
    Alcotest.test_case "single point read inlines directly" `Quick
      test_single_point_read_inlines;
    Alcotest.test_case "repeated point reads share a register" `Quick
      test_repeated_point_reads_share_register;
    Alcotest.test_case "point read inside Shift re-inlines" `Quick
      test_point_read_inside_shift_inlines;
    Alcotest.test_case "windowed read wraps Shift with exchange" `Quick
      test_windowed_read_wraps_shift_with_exchange;
    Alcotest.test_case "windowed read without exchange" `Quick
      test_windowed_read_without_exchange;
    Alcotest.test_case "unproduced images untouched" `Quick
      test_unproduced_images_untouched;
    Alcotest.test_case "mixed point and windowed reads" `Quick
      test_mixed_point_and_windowed_reads;
  ]
