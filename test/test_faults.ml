(* Deterministic fault injection: prove the pool never leaks domains
   when workers or spawns die, that the driver degrades to the baseline
   partition when a search stage faults or overruns its budget, and that
   strict mode restores fail-fast.  All faults are armed through
   [Faults.with_spec], so the registry is clean again after each test
   regardless of outcome. *)

module Faults = Kfuse_util.Faults
module Pool = Kfuse_util.Pool
module Diag = Kfuse_util.Diag
module F = Kfuse_fusion
module Ir = Kfuse_ir
module Iset = Kfuse_util.Iset

let harris () =
  (Option.get (Kfuse_apps.Registry.find "harris")).Kfuse_apps.Registry.pipeline ()

let is_singletons p partition =
  List.length partition = Ir.Pipeline.num_kernels p
  && List.for_all (fun b -> Iset.cardinal b = 1) partition

let code_of d = Diag.code_id d.Diag.code

(* ---- parser ---- *)

let test_parse_spec () =
  let ok spec expect =
    match Faults.parse_spec spec with
    | Ok clauses -> Alcotest.(check bool) spec true (clauses = expect)
    | Error msg -> Alcotest.failf "%s: unexpected parse error %s" spec msg
  in
  ok "pool.task@3" [ ("pool.task", Faults.Nth 3) ];
  ok "cut.karger/2" [ ("cut.karger", Faults.Every 2) ];
  ok "sim.sample~0.25:42" [ ("sim.sample", Faults.Prob (0.25, 42)) ];
  ok "driver.strategy" [ ("driver.strategy", Faults.Nth 1) ];
  ok " a@1 , b/2 " [ ("a", Faults.Nth 1); ("b", Faults.Every 2) ];
  let bad spec =
    match Faults.parse_spec spec with
    | Ok _ -> Alcotest.failf "%S should not parse" spec
    | Error _ -> ()
  in
  bad "";
  bad "p@0";
  bad "p@x";
  bad "p/0";
  bad "p~0.5";
  bad "p~1.5:1"

let test_triggers () =
  (* Nth fires exactly once, at the nth hit. *)
  Faults.with_spec "pt@3" (fun () ->
      Faults.hit "pt";
      Faults.hit "pt";
      (match Faults.hit "pt" with
      | () -> Alcotest.fail "third hit should fire"
      | exception Faults.Fault { point; hit } ->
        Alcotest.(check string) "point" "pt" point;
        Alcotest.(check int) "hit" 3 hit);
      Faults.hit "pt";
      Alcotest.(check int) "hits observed" 4 (Faults.hits "pt"));
  Alcotest.(check bool) "cleared" false (Faults.active ());
  (* Every n fires on each multiple. *)
  Faults.with_spec "pt/2" (fun () ->
      let fired = ref 0 in
      for _ = 1 to 6 do
        match Faults.hit "pt" with () -> () | exception Faults.Fault _ -> incr fired
      done;
      Alcotest.(check int) "every-2 over 6 hits" 3 !fired)

let test_prob_determinism () =
  let run () =
    Faults.with_spec "pt~0.5:1234" (fun () ->
        List.init 64 (fun _ ->
            match Faults.hit "pt" with () -> false | exception Faults.Fault _ -> true))
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same firing pattern" true (a = b);
  Alcotest.(check bool) "fires sometimes" true (List.mem true a);
  Alcotest.(check bool) "passes sometimes" true (List.mem false a)

(* ---- pool ---- *)

let test_pool_task_fault_no_leak () =
  let before = Pool.live_domains () in
  (match
     Pool.with_pool 4 (fun pool ->
         Faults.with_spec "pool.task@3" (fun () ->
             Pool.run pool ~n:16 (fun _ -> ())))
   with
  | () -> Alcotest.fail "expected the injected worker fault to propagate"
  | exception Faults.Fault { point; _ } ->
    Alcotest.(check string) "fault point" "pool.task" point);
  Alcotest.(check int) "no leaked domains after worker fault" before (Pool.live_domains ())

let test_pool_spawn_fault_no_leak () =
  let before = Pool.live_domains () in
  (match Faults.with_spec "pool.spawn@2" (fun () -> Pool.create 4) with
  | _pool -> Alcotest.fail "expected creation to fail on the second spawn"
  | exception Faults.Fault { point; _ } ->
    Alcotest.(check string) "fault point" "pool.spawn" point);
  Alcotest.(check int) "partial spawn joined every domain" before (Pool.live_domains ())

let test_pool_batch_completes_after_fault () =
  (* Every task of the batch still runs even when one faults: the slots
     of the non-faulting indices are all written. *)
  Pool.with_pool 3 (fun pool ->
      let seen = Array.make 32 false in
      (match
         Faults.with_spec "pool.task@5" (fun () ->
             Pool.run pool ~n:32 (fun i -> seen.(i) <- true))
       with
      | () -> Alcotest.fail "expected fault"
      | exception Faults.Fault _ -> ());
      let ran = Array.fold_left (fun n b -> if b then n + 1 else n) 0 seen in
      Alcotest.(check int) "all but the faulting task ran" 31 ran;
      (* The pool survives the faulting batch. *)
      Pool.run pool ~n:8 (fun _ -> ());
      Alcotest.(check pass) "pool reusable after fault" () ())

(* ---- driver degradation ---- *)

let test_driver_degrades_on_cut_fault () =
  let p = harris () in
  Faults.with_spec "cut.stoer_wagner@1" (fun () ->
      let r = F.Driver.run F.Config.default F.Driver.Mincut p in
      Alcotest.(check bool) "degraded" true r.F.Driver.degraded;
      Alcotest.(check bool) "baseline singletons" true (is_singletons p r.F.Driver.partition);
      match r.F.Driver.warnings with
      | [ d ] ->
        Alcotest.(check string) "fault diagnostic" "KF0901" (code_of d);
        Alcotest.(check bool) "warning severity" false (Diag.is_error d)
      | ws -> Alcotest.failf "expected one warning, got %d" (List.length ws))

let test_driver_strict_fails_fast () =
  let p = harris () in
  Faults.with_spec "cut.stoer_wagner@1" (fun () ->
      match F.Driver.run ~strict:true F.Config.default F.Driver.Mincut p with
      | _ -> Alcotest.fail "strict mode must raise on an injected fault"
      | exception Diag.Fatal d ->
        Alcotest.(check string) "error code" "KF0901" (code_of d);
        Alcotest.(check bool) "error severity" true (Diag.is_error d));
  (* run_result surfaces the same failure as Error. *)
  Faults.with_spec "driver.strategy@1" (fun () ->
      match F.Driver.run_result ~strict:true F.Config.default F.Driver.Greedy p with
      | Error d -> Alcotest.(check string) "run_result error" "KF0901" (code_of d)
      | Ok _ -> Alcotest.fail "expected Error from strict run_result")

let test_driver_budget_degrades () =
  let p = harris () in
  let r = F.Driver.run ~budget_ms:0.0 F.Config.default F.Driver.Mincut p in
  Alcotest.(check bool) "degraded" true r.F.Driver.degraded;
  Alcotest.(check bool) "baseline singletons" true (is_singletons p r.F.Driver.partition);
  (match r.F.Driver.warnings with
  | d :: _ -> Alcotest.(check string) "budget diagnostic" "KF0603" (code_of d)
  | [] -> Alcotest.fail "expected a budget warning");
  (* Without a budget the same run is clean. *)
  let clean = F.Driver.run F.Config.default F.Driver.Mincut p in
  Alcotest.(check bool) "no budget, no degradation" false clean.F.Driver.degraded

let test_driver_fault_parallel_no_leak () =
  (* Degradation with a real pool underneath: the min-cut search faults
     inside worker-driven recursion waves, the driver falls back, and
     every domain is joined on the way out. *)
  let before = Pool.live_domains () in
  let p = harris () in
  Pool.with_pool 4 (fun pool ->
      Faults.with_spec "cut.stoer_wagner@2" (fun () ->
          let r = F.Driver.run ~pool F.Config.default F.Driver.Mincut p in
          Alcotest.(check bool) "degraded" true r.F.Driver.degraded));
  Alcotest.(check int) "no leaked domains" before (Pool.live_domains ())

let test_sim_fault_no_deadlock () =
  let before = Pool.live_domains () in
  let p = harris () in
  (match
     Pool.with_pool 4 (fun pool ->
         Faults.with_spec "sim.sample@7" (fun () ->
             Kfuse_gpu.Sim.measure ~runs:32 ~pool Kfuse_gpu.Device.gtx680
               ~quality:Kfuse_gpu.Perf_model.Optimized ~fused_kernels:[] p))
   with
  | _ -> Alcotest.fail "expected the simulator fault to propagate"
  | exception Faults.Fault { point; _ } ->
    Alcotest.(check string) "fault point" "sim.sample" point);
  Alcotest.(check int) "no leaked domains after sim fault" before (Pool.live_domains ())

let suite =
  [
    Alcotest.test_case "parse_spec" `Quick test_parse_spec;
    Alcotest.test_case "trigger semantics" `Quick test_triggers;
    Alcotest.test_case "Prob is seed-deterministic" `Quick test_prob_determinism;
    Alcotest.test_case "worker fault leaks no domains" `Quick test_pool_task_fault_no_leak;
    Alcotest.test_case "spawn fault leaks no domains" `Quick test_pool_spawn_fault_no_leak;
    Alcotest.test_case "batch completes around a fault" `Quick test_pool_batch_completes_after_fault;
    Alcotest.test_case "driver degrades on cut fault" `Quick test_driver_degrades_on_cut_fault;
    Alcotest.test_case "strict mode fails fast" `Quick test_driver_strict_fails_fast;
    Alcotest.test_case "budget overrun degrades" `Quick test_driver_budget_degrades;
    Alcotest.test_case "parallel degradation, no leak" `Quick test_driver_fault_parallel_no_leak;
    Alcotest.test_case "sim fault: no deadlock, no leak" `Quick test_sim_fault_no_deadlock;
  ]
