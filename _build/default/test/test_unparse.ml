(* Tests for the DSL unparser: round-trips and unsupported cases. *)

module E = Kfuse_dsl.Elaborate
module U = Kfuse_dsl.Unparse
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Image = Kfuse_image.Image
module Iset = Kfuse_util.Iset

let unparse_ok p =
  match U.pipeline p with
  | Ok s -> s
  | Error e -> Alcotest.failf "unparse failed: %s" e

let reparse_ok s =
  match E.parse_pipeline s with
  | Ok p -> p
  | Error e -> Alcotest.failf "reparse failed: %s on\n%s" e s

let rng = Kfuse_util.Rng.create 808

let semantically_equal (a : Pipeline.t) (b : Pipeline.t) =
  let inputs =
    List.map
      (fun n ->
        (n, Image.random rng ~width:a.Pipeline.width ~height:a.Pipeline.height ~lo:0.0 ~hi:1.0))
      a.Pipeline.inputs
  in
  let env = Kfuse_ir.Eval.env_of_list inputs in
  let oa = Kfuse_ir.Eval.run_outputs a env and ob = Kfuse_ir.Eval.run_outputs b env in
  List.for_all2
    (fun (n1, x) (n2, y) -> String.equal n1 n2 && Image.max_abs_diff x y < 1e-12)
    oa ob

let test_roundtrip_paper_apps () =
  List.iter
    (fun (e : Kfuse_apps.Registry.entry) ->
      let p = e.Kfuse_apps.Registry.small ~width:11 ~height:9 in
      let text = unparse_ok p in
      let p2 = reparse_ok text in
      Alcotest.(check bool) (e.Kfuse_apps.Registry.name ^ " roundtrip") true
        (semantically_equal p p2);
      (* Unparsing is a fixpoint after the first round. *)
      Alcotest.(check string) (e.Kfuse_apps.Registry.name ^ " fixpoint") text
        (unparse_ok p2))
    Kfuse_apps.Registry.all

let test_roundtrip_extra_apps () =
  List.iter
    (fun p ->
      let p2 = reparse_ok (unparse_ok p) in
      Alcotest.(check bool) (p.Pipeline.name ^ " roundtrip") true (semantically_equal p p2))
    [
      Kfuse_apps.Extra.median_pipeline ~width:9 ~height:7 ();
      Kfuse_apps.Extra.canny_lite_pipeline ~width:9 ~height:7 ();
    ]

let test_roundtrip_preserves_structure () =
  let p = Kfuse_apps.Harris.pipeline ~width:11 ~height:9 () in
  let p2 = reparse_ok (unparse_ok p) in
  Alcotest.(check int) "kernel count" (Pipeline.num_kernels p) (Pipeline.num_kernels p2);
  Alcotest.(check (list string)) "outputs" (Pipeline.outputs p) (Pipeline.outputs p2);
  Alcotest.(check bool) "params kept" true
    (List.mem_assoc "k" p2.Pipeline.params)

let test_expr_rendering () =
  let open Expr in
  let check e expected =
    match U.expr e with
    | Ok s -> Alcotest.(check string) "render" expected s
    | Error r -> Alcotest.failf "unexpected failure: %s" r
  in
  check (input "a" + Const 1.0) "(a + 1)";
  check (input ~dx:(-1) ~dy:2 ~border:Kfuse_image.Border.Mirror "a") "a@(-1,2):mirror";
  check (let_ "v" (input "a") (var "v" * var "v")) "(let v = a in (v * v))";
  check (select Expr.Lt (input "a") (Const 0.5) (Const 0.0) (Const 1.0))
    "select(a, 0.5, 0, 1)";
  check (neg (input "a")) "(-a)"

let test_unsupported () =
  let open Expr in
  (match U.expr (Shift { dx = 1; dy = 0; exchange = None; body = input "a" }) with
  | Error _ -> ()
  | Ok s -> Alcotest.failf "shift should not unparse, got %s" s);
  (match U.expr (select Expr.Eq (input "a") (Const 0.0) (Const 1.0) (Const 2.0)) with
  | Error _ -> ()
  | Ok s -> Alcotest.failf "eq-select should not unparse, got %s" s);
  (* A fused pipeline contains Shift nodes. *)
  let module F = Kfuse_fusion in
  let harris = Kfuse_apps.Harris.pipeline ~width:11 ~height:9 () in
  let fused = (F.Driver.run F.Config.default F.Driver.Mincut harris).F.Driver.fused in
  match U.pipeline fused with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fused pipeline should not unparse"

let test_reserved_names () =
  let p =
    Pipeline.create ~name:"t" ~width:4 ~height:4 ~inputs:[ "in" ]
      [ Kernel.map ~name:"reduce" ~inputs:[ "in" ] (Expr.input "in") ]
  in
  (match U.pipeline p with
  | Error e -> Alcotest.(check bool) "mentions keyword" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "keyword-named kernel should not unparse");
  (* "in"/"conv"/"select" are fine as plain identifiers. *)
  let ok =
    Pipeline.create ~name:"t" ~width:4 ~height:4 ~inputs:[ "in" ]
      [ Kernel.map ~name:"conv" ~inputs:[ "in" ] (Expr.input "in") ]
  in
  match U.pipeline ok with
  | Ok text -> ignore (reparse_ok text)
  | Error e -> Alcotest.failf "benign name rejected: %s" e

let suite =
  [
    Alcotest.test_case "roundtrip paper apps" `Slow test_roundtrip_paper_apps;
    Alcotest.test_case "roundtrip extra apps" `Quick test_roundtrip_extra_apps;
    Alcotest.test_case "roundtrip preserves structure" `Quick test_roundtrip_preserves_structure;
    Alcotest.test_case "expression rendering" `Quick test_expr_rendering;
    Alcotest.test_case "unsupported constructs" `Quick test_unsupported;
    Alcotest.test_case "reserved names rejected" `Quick test_reserved_names;
  ]
