lib/ir/pipeline.mli: Format Kernel Kfuse_graph Kfuse_util
