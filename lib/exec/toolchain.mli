(** C toolchain discovery for the native execution backend.

    The backend shells out to a host C compiler to build fused plans.
    [KFUSE_CC] pins the compiler explicitly; otherwise [cc], [gcc] and
    [clang] are probed in order.  Each candidate is verified by actually
    compiling a tiny translation unit — once with [-fopenmp] (an OpenMP
    pragma included, so the support library must link) and, failing
    that, without, in which case the generated pragmas are ignored by
    the compiler and execution is sequential.

    Probe results are memoized per [KFUSE_CC] value: discovery runs at
    most one compile per candidate per process. *)

type t = {
  cc : string;  (** compiler command, e.g. ["cc"] or [$KFUSE_CC] *)
  openmp : bool;  (** whether [-fopenmp] compiles and links *)
}

(** [find ()] locates a working compiler.
    [Error] is {!Kfuse_util.Diag.Toolchain_missing} ([KF0902]): nothing
    usable on [PATH], or [KFUSE_CC] names a compiler that cannot build a
    trivial program. *)
val find : unit -> (t, Kfuse_util.Diag.t) result

(** [flags t ~shared] is the flag set used for building fused plans:
    [-O2], [-fopenmp] when supported, plus [-shared -fPIC] when
    [shared].  Always includes the interpreter-faithfulness flags
    [-fno-builtin-pow -fno-builtin-powf -ffp-contract=off]: without
    them the optimizer strength-reduces [pow(x, 2.0)] to [x*x] (1 ulp
    off glibc's pow) or contracts [a*b+c] into fma on targets that
    have one, and native output stops being bit-comparable with the
    {!Kfuse_ir.Eval} interpreter. *)
val flags : t -> shared:bool -> string list

(** [id t] is a short stable description ([cc] plus OpenMP support),
    folded into compile-cache keys so switching compilers never replays
    a stale artifact. *)
val id : t -> string
