test/test_stoer_wagner.ml: Alcotest Helpers Kfuse_graph Kfuse_util List
