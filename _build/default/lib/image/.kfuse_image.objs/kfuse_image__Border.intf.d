lib/image/border.mli: Format
