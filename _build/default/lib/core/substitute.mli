(** Producer-body substitution shared by {!Transform} and
    {!Inline_fusion}.

    Replaces reads of produced images inside a consumer body:
    - point reads (offset 0) {e outside} any [Shift] frame that occur more
      than once share one [Let]-bound register;
    - point reads {e inside} a [Shift] frame inline the producer body
      directly — the value at the shifted position differs from the
      outer register, so sharing it would be unsound;
    - windowed reads wrap the producer body in a [Shift] carrying the
      consumer's border mode as index exchange (when [exchange] is set). *)

(** [inline_producers ~exchange ~fresh ~produced body] rewrites [body].
    [produced image] returns the (fully inlined, closed) producer body
    when [image] is being substituted; [fresh image] allocates a register
    name unused in any involved expression. *)
val inline_producers :
  exchange:bool ->
  fresh:(string -> string) ->
  produced:(string -> Kfuse_ir.Expr.t option) ->
  Kfuse_ir.Expr.t ->
  Kfuse_ir.Expr.t
