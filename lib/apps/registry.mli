(** The benchmark applications of the paper's evaluation (Section V-B). *)

type entry = {
  name : string;
  description : string;
  pipeline : unit -> Kfuse_ir.Pipeline.t;
      (** builds the pipeline at the paper's evaluation size *)
  small : width:int -> height:int -> Kfuse_ir.Pipeline.t;
      (** builds the same pipeline at a custom size (for tests) *)
}

(** [all] lists the applications: the paper's six in table order
    (Harris, Sobel, Unsharp, ShiTomasi, Enhance, Night) plus the two
    temporal streaming apps (Motion, THarris) before Night. *)
val all : entry list

(** [find name] looks an application up by name. *)
val find : string -> entry option

(** [names] is the list of application names in table order. *)
val names : string list
