module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Cost = Kfuse_ir.Cost

type quality = Optimized | Basic_codegen

type params = {
  eff_point : float;
  eff_local : float;
  basic_fused_penalty : float;
  sfu_throughput_cost : float;
  shared_access_cost : float;
  launch_overhead_ms : float;
  threads_per_block : int;
  regs_per_thread : int;
}

let default_params =
  {
    eff_point = 0.85;
    eff_local = 0.65;
    basic_fused_penalty = 0.85;
    sfu_throughput_cost = 16.0;
    shared_access_cost = 0.5;
    launch_overhead_ms = 0.005;
    threads_per_block = 128;
    regs_per_thread = 32;
  }

type kernel_time = {
  kernel_name : string;
  fused : bool;
  global_accesses_per_px : float;
  ops_per_px : float;
  shared_bytes : int;
  occupancy : float;
  t_mem_ms : float;
  t_comp_ms : float;
  t_ms : float;
}

(* Halo overhead of staging a windowed footprint in shared memory: tile
   elements loaded from global per output pixel. *)
let tile_factor (block : Cost.block) w =
  if Kfuse_ir.Footprint.is_point w then 1.0
  else
    float_of_int (Cost.tile_bytes_window block w / 4)
    /. float_of_int (block.bx * block.by)

let block_of_params p = { Cost.bx = 32; by = p.threads_per_block / 32 }

(* Number of body accesses per input image (taps), for shared-memory
   read counting. *)
let taps_per_image (k : Kernel.t) =
  let e = match k.Kernel.op with Kernel.Map e -> e | Kernel.Reduce { arg; _ } -> arg in
  List.fold_left
    (fun acc (img, _, _) ->
      let prev = match List.assoc_opt img acc with Some n -> n | None -> 0 in
      (img, prev + 1) :: List.remove_assoc img acc)
    [] (Expr.accesses e)

let kernel_time ?(params = default_params) ?block (d : Device.t) ~quality ~fused
    (p : Pipeline.t) (k : Kernel.t) =
  let block = match block with Some b -> b | None -> block_of_params params in
  let threads_per_block = block.Cost.bx * block.Cost.by in
  let footprints = Kfuse_ir.Footprint.of_kernel k in
  let is_reduce = Kernel.is_global k in
  let px = float_of_int (Pipeline.is_pixels p) in
  (* Global traffic: one (tile-factored) stream per distinct input image,
     plus the output store. *)
  let loads =
    List.fold_left (fun acc (_, w) -> acc +. tile_factor block w) 0.0 footprints
  in
  let stores = if is_reduce then 0.0 else 1.0 in
  let global_accesses = loads +. stores in
  let bytes_per_px = global_accesses *. 4.0 in
  (* Shared-memory accesses: staged (windowed) images pay the tile fill
     plus one read per tap. *)
  let taps = taps_per_image k in
  let shared_accesses =
    List.fold_left
      (fun acc (img, w) ->
        if not (Kfuse_ir.Footprint.is_point w) then
          let t = match List.assoc_opt img taps with Some n -> float_of_int n | None -> 0.0 in
          acc +. tile_factor block w +. t
        else acc)
      0.0 footprints
  in
  let counts = Cost.kernel_op_counts k in
  let ops_per_px =
    float_of_int counts.Cost.alu
    +. (params.sfu_throughput_cost *. float_of_int counts.Cost.sfu)
    +. (params.shared_access_cost *. shared_accesses)
  in
  let shared_bytes = Cost.kernel_shared_bytes block k in
  let regs_per_thread = max params.regs_per_thread (Cost.kernel_registers k) in
  let occ =
    Occupancy.compute d ~shared_bytes_per_block:shared_bytes ~regs_per_thread
      ~threads_per_block
  in
  let is_local = Kernel.is_local k in
  let eff =
    (if is_local then params.eff_local else params.eff_point)
    *. (match quality with
       | Optimized -> 1.0
       | Basic_codegen -> if fused then params.basic_fused_penalty else 1.0)
  in
  let bw = Device.peak_bandwidth_bytes_per_s d *. eff in
  let ops_rate = Device.compute_throughput_ops_per_s d in
  let t_mem_ms = px *. bytes_per_px /. bw *. 1e3 in
  let t_comp_ms = px *. ops_per_px /. ops_rate *. 1e3 in
  let derate = Occupancy.latency_hiding_factor occ.Occupancy.occupancy in
  let t_ms = (Float.max t_mem_ms t_comp_ms /. derate) +. params.launch_overhead_ms in
  {
    kernel_name = k.Kernel.name;
    fused;
    global_accesses_per_px = global_accesses;
    ops_per_px;
    shared_bytes;
    occupancy = occ.Occupancy.occupancy;
    t_mem_ms;
    t_comp_ms;
    t_ms;
  }

let pipeline_time ?(params = default_params) ?block d ~quality ~fused_kernels
    (p : Pipeline.t) =
  let breakdown =
    Array.to_list p.Pipeline.kernels
    |> List.map (fun k ->
           let fused = List.mem k.Kernel.name fused_kernels in
           kernel_time ~params ?block d ~quality ~fused p k)
  in
  let total = List.fold_left (fun acc kt -> acc +. kt.t_ms) 0.0 breakdown in
  (breakdown, total)

let quality_to_string = function
  | Optimized -> "optimized"
  | Basic_codegen -> "basic"

let pp_kernel_time ppf kt =
  Format.fprintf ppf
    "%-12s %s mem=%.4fms comp=%.4fms total=%.4fms (%.2f acc/px, %.1f ops/px, occ=%.2f)"
    kt.kernel_name
    (if kt.fused then "[fused]" else "       ")
    kt.t_mem_ms kt.t_comp_ms kt.t_ms kt.global_accesses_per_px kt.ops_per_px
    kt.occupancy
