module Diag = Kfuse_util.Diag
module Child = Kfuse_exec.Supervisor.Child

(* ---- fleet layout ---- *)

let socket_path ~dir i = Filename.concat dir (Printf.sprintf "shard-%d.sock" i)
let log_path ~dir i = Filename.concat dir (Printf.sprintf "shard-%d.log" i)

(* A crashed fleet leaves one stale socket file per shard.  Claim every
   slot the new fleet will use, plus any [shard-<j>.sock] leftover from
   a previously larger fleet: [Server.claim_socket] unlinks stale files
   and refuses live listeners, so two fleets can never fight over a
   directory. *)
let sweep_sockets ~dir ~count =
  let claim i = Server.claim_socket (socket_path ~dir i) in
  let rec go i = if i >= count then Ok () else Result.bind (claim i) (fun () -> go (i + 1)) in
  Result.bind (go 0) (fun () ->
      match Sys.readdir dir with
      | exception Sys_error _ -> Ok ()
      | entries ->
        Array.fold_left
          (fun acc name ->
            Result.bind acc (fun () ->
                match Scanf.sscanf_opt name "shard-%d.sock%!" Fun.id with
                | Some j when j >= count -> claim j
                | _ -> Ok ()))
          (Ok ()) entries)

(* ---- supervision policy ---- *)

type config = {
  storm_threshold : int;
  storm_window_ms : float;
  restart_backoff_ms : float;
  max_restart_backoff_ms : float;
  dead_cooldown_ms : float;
  max_ping_misses : int;
}

let default_config =
  {
    storm_threshold = 5;
    storm_window_ms = 2_000.;
    restart_backoff_ms = 100.;
    max_restart_backoff_ms = 5_000.;
    dead_cooldown_ms = 10_000.;
    max_ping_misses = 4;
  }

(* ---- one shard slot ---- *)

type state =
  | Starting  (** spawned, not yet answering pings *)
  | Up
  | Backoff of { until : float }  (** crashed; respawn at [until] *)
  | Dead of { since : float }  (** restart storm tripped the breaker *)

type t = {
  index : int;
  socket : string;
  log : string;
  argv : string list;
  mutable child : Child.t option;
  mutable state : state;
  mutable spawns : int;
  mutable spawned_at : float;
  mutable consecutive_failures : int;
  mutable ping_misses : int;
  mutable last_exit : string option;
}

type event = Respawned | Exited of string | Killed_hung | Marked_dead

let create ~index ~socket ~log ~argv =
  {
    index;
    socket;
    log;
    argv;
    child = None;
    state = Backoff { until = 0. };  (* the first tick spawns *)
    spawns = 0;
    spawned_at = 0.;
    consecutive_failures = 0;
    ping_misses = 0;
    last_exit = None;
  }

let index t = t.index
let socket t = t.socket
let state t = t.state
let restarts t = max 0 (t.spawns - 1)
let consecutive_failures t = t.consecutive_failures
let last_exit t = t.last_exit
let pid t = Option.map Child.pid t.child

let state_string t =
  match t.state with
  | Starting -> "starting"
  | Up -> "up"
  | Backoff _ -> "backoff"
  | Dead _ -> "dead"

(* A shard is routable while its process is believed alive: [Up] for
   sure, [Starting] optimistically — the forwarder treats a refused
   connect as "try the next shard", so routing to a not-yet-bound shard
   costs one failed connect, not a client-visible error. *)
let routable t = match t.state with Starting | Up -> true | Backoff _ | Dead _ -> false

let status_string = function
  | Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by %s" (Kfuse_exec.Supervisor.signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by %s" (Kfuse_exec.Supervisor.signal_name s)

(* Exponential respawn backoff: base * 2^(streak-1), capped. *)
let backoff_delay_s cfg t =
  let step =
    cfg.restart_backoff_ms *. (2. ** float_of_int (max 0 (t.consecutive_failures - 1)))
  in
  Float.min step cfg.max_restart_backoff_ms /. 1000.

let record_failure cfg t ~now ~what =
  t.last_exit <- Some what;
  t.consecutive_failures <- t.consecutive_failures + 1;
  if t.consecutive_failures >= cfg.storm_threshold then begin
    t.state <- Dead { since = now };
    true
  end
  else begin
    t.state <- Backoff { until = now +. backoff_delay_s cfg t };
    false
  end

let spawn_now cfg t ~now =
  match
    Child.spawn ~stdout_path:t.log ~stderr_path:t.log ~append:true ~argv:t.argv ()
  with
  | Ok c ->
    t.child <- Some c;
    t.spawns <- t.spawns + 1;
    t.spawned_at <- now;
    t.ping_misses <- 0;
    t.state <- Starting;
    let events = if t.spawns > 1 then [ Respawned ] else [] in
    Ok events
  | Error reason ->
    (* A failed spawn counts like an instant crash: back off (or trip
       the storm breaker) instead of hammering fork in a tight loop. *)
    let dead = record_failure cfg t ~now ~what:("spawn failed: " ^ reason) in
    Error (if dead then [ Marked_dead ] else [])

(* One supervision step.  Pure bookkeeping plus at most one spawn and a
   bounded [ping]; called from the router's monitor thread (which owns
   all mutation — routing threads only read). *)
let tick cfg t ~now ?ping () =
  let events = ref [] in
  let emit e = events := e :: !events in
  (* 1. Observe a death. *)
  (match t.child with
  | None -> ()
  | Some c -> (
    match Child.poll c with
    | None -> ()
    | Some status ->
      let what = status_string status in
      t.child <- None;
      emit (Exited what);
      (* Only a {e rapid} failure feeds the storm counter: surviving
         past the window proves the binary basically works, so the
         streak restarts at 1. *)
      if (now -. t.spawned_at) *. 1000. >= cfg.storm_window_ms then
        t.consecutive_failures <- 0;
      if record_failure cfg t ~now ~what then emit Marked_dead));
  (* 2. Respawn decisions. *)
  (match (t.child, t.state) with
  | None, Backoff { until } when now >= until -> (
    match spawn_now cfg t ~now with
    | Ok evs | Error evs -> List.iter emit evs)
  | None, Dead { since }
    when cfg.dead_cooldown_ms > 0. && (now -. since) *. 1000. >= cfg.dead_cooldown_ms -> (
    (* Half-open probe: one respawn.  [consecutive_failures] stays at
       the threshold, so a single rapid failure re-marks it dead for a
       whole new cooldown; only surviving past the storm window resets
       the streak. *)
    match spawn_now cfg t ~now with
    | Ok evs | Error evs -> List.iter emit evs)
  | _ -> ());
  (* 3. Health check. *)
  (match (t.child, ping) with
  | Some c, Some ping when Child.running c -> (
    match t.state with
    | Starting | Up ->
      if ping t.socket then begin
        t.ping_misses <- 0;
        t.state <- Up
      end
      else begin
        t.ping_misses <- t.ping_misses + 1;
        if t.ping_misses >= cfg.max_ping_misses then begin
          (* Alive as a process, dead as a server: kill it and let the
             next tick's poll apply the normal crash/backoff path. *)
          Child.kill c;
          emit Killed_hung
        end
      end
    | Backoff _ | Dead _ -> ())
  | _ -> ());
  List.rev !events

let stop ?(grace_ms = 2_000.) t =
  (match t.child with
  | Some c ->
    ignore (Child.terminate ~grace_ms c);
    t.child <- None
  | None -> ());
  t.state <- Dead { since = Unix.gettimeofday () }
