lib/apps/shitomasi.ml: Kfuse_image Kfuse_ir
