(* Tests for the six benchmark applications (Section V-B): structure,
   compute patterns, op counts, and functional sanity. *)

module F = Kfuse_fusion
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Cost = Kfuse_ir.Cost
module Image = Kfuse_image.Image
module Registry = Kfuse_apps.Registry

let pattern p name =
  Kernel.pattern (Pipeline.kernel p (Option.get (Pipeline.index_of p name)))

let check_pattern p name expected =
  Alcotest.(check string)
    (Printf.sprintf "%s is %s" name expected)
    expected
    (Kernel.pattern_to_string (pattern p name))

let test_registry () =
  Alcotest.(check (list string))
    "table order"
    [ "harris"; "sobel"; "unsharp"; "shitomasi"; "enhance"; "motion"; "tharris"; "night" ]
    Registry.names;
  Alcotest.(check bool) "find" true (Option.is_some (Registry.find "harris"));
  Alcotest.(check bool) "missing" true (Registry.find "canny" = None)

let test_harris_structure () =
  let p = Kfuse_apps.Harris.pipeline () in
  (* "Those nine kernels are connected by ten edges." *)
  Alcotest.(check int) "nine kernels" 9 (Pipeline.num_kernels p);
  Alcotest.(check int) "ten edges" 10
    (Kfuse_graph.Digraph.num_edges (Pipeline.dag p));
  Alcotest.(check int) "2048 wide" 2048 p.Pipeline.width;
  List.iter (fun n -> check_pattern p n "local(r=1)") [ "dx"; "dy"; "gx"; "gy"; "gxy" ];
  List.iter (fun n -> check_pattern p n "point") [ "sx"; "sy"; "sxy"; "hc" ];
  Alcotest.(check (list string)) "single output" [ "hc" ] (Pipeline.outputs p)

let test_shitomasi_structure () =
  let p = Kfuse_apps.Shitomasi.pipeline () in
  Alcotest.(check int) "nine kernels" 9 (Pipeline.num_kernels p);
  Alcotest.(check int) "ten edges" 10 (Kfuse_graph.Digraph.num_edges (Pipeline.dag p));
  check_pattern p "st" "point"

let test_sobel_structure () =
  let p = Kfuse_apps.Sobel.pipeline () in
  Alcotest.(check int) "three kernels" 3 (Pipeline.num_kernels p);
  check_pattern p "dx" "local(r=1)";
  check_pattern p "dy" "local(r=1)";
  check_pattern p "mag" "point"

let test_unsharp_structure () =
  (* "consists of a local kernel that blurs the image followed by three
     point kernels"; all four read the source image (Fig 2b shape). *)
  let p = Kfuse_apps.Unsharp.pipeline () in
  Alcotest.(check int) "four kernels" 4 (Pipeline.num_kernels p);
  check_pattern p "blur" "local(r=1)";
  List.iter (fun n -> check_pattern p n "point") [ "highfreq"; "cubic"; "sharpened" ];
  Array.iter
    (fun (k : Kernel.t) ->
      Alcotest.(check bool) (k.Kernel.name ^ " reads source") true
        (List.mem "in" k.Kernel.inputs))
    p.Pipeline.kernels

let test_enhance_structure () =
  let p = Kfuse_apps.Enhance.pipeline () in
  Alcotest.(check int) "three kernels" 3 (Pipeline.num_kernels p);
  check_pattern p "geomean" "local(r=1)";
  check_pattern p "gamma" "point";
  check_pattern p "stretch" "point"

let test_night_structure () =
  let p = Kfuse_apps.Night.pipeline () in
  Alcotest.(check int) "three kernels" 3 (Pipeline.num_kernels p);
  Alcotest.(check int) "1920 wide" 1920 p.Pipeline.width;
  Alcotest.(check int) "RGB planes" 3 p.Pipeline.channels;
  check_pattern p "atrous0" "local(r=1)";
  check_pattern p "atrous1" "local(r=2)";
  check_pattern p "scoto" "point"

let test_night_atrous_dilation () =
  (* Level 1 of the a-trous algorithm dilates taps by 2: offsets are in
     {-2, 0, 2} only. *)
  let p = Kfuse_apps.Night.pipeline () in
  let a1 = Pipeline.kernel p (Option.get (Pipeline.index_of p "atrous1")) in
  List.iter
    (fun (_, dx, dy) ->
      Alcotest.(check bool) "dilated offsets" true
        (List.mem dx [ -2; 0; 2 ] && List.mem dy [ -2; 0; 2 ]))
    (Kfuse_ir.Expr.accesses (Kernel.body a1))

let test_night_op_counts () =
  (* The paper counts 68 ALU operations for the a-trous kernels and 89
     for Scoto; our bodies land in the same regime (the fusion decision
     only needs phi >> delta). *)
  let p = Kfuse_apps.Night.pipeline () in
  let count name =
    Cost.kernel_op_counts (Pipeline.kernel p (Option.get (Pipeline.index_of p name)))
  in
  let a = count "atrous0" in
  Alcotest.(check bool) "atrous alu heavy" true (a.Cost.alu >= 50 && a.Cost.alu <= 90);
  Alcotest.(check bool) "atrous has sfu" true (a.Cost.sfu >= 9);
  let s = count "scoto" in
  Alcotest.(check bool) "scoto ~89 alu" true (s.Cost.alu >= 75 && s.Cost.alu <= 100)

let test_all_apps_interpret () =
  (* Every app runs on a small plane and produces finite values. *)
  let rng = Kfuse_util.Rng.create 31 in
  List.iter
    (fun (e : Registry.entry) ->
      let p = e.Registry.small ~width:16 ~height:12 in
      let inputs =
        List.map
          (fun n -> (n, Image.random rng ~width:16 ~height:12 ~lo:0.05 ~hi:1.0))
          p.Pipeline.inputs
      in
      let outs = Kfuse_ir.Eval.run_outputs p (Kfuse_ir.Eval.env_of_list inputs) in
      List.iter
        (fun (name, img) ->
          let finite = Image.fold (fun acc v -> acc && Float.is_finite v) true img in
          Alcotest.(check bool) (e.Registry.name ^ "/" ^ name ^ " finite") true finite)
        outs)
    Registry.all

let test_harris_response_semantics () =
  (* On a synthetic corner, the Harris response at the corner exceeds the
     response on a flat region. *)
  let p = Kfuse_apps.Harris.pipeline ~width:17 ~height:17 () in
  let corner =
    Image.init ~width:17 ~height:17 (fun x y -> if x >= 8 && y >= 8 then 1.0 else 0.0)
  in
  let out = Helpers.run_single p [ ("in", corner) ] in
  let at_corner = Image.get out 8 8 in
  let flat = Image.get out 2 2 in
  Alcotest.(check bool) "corner response dominates" true (at_corner > flat +. 1e-3)

let test_sobel_edge_semantics () =
  (* A vertical step edge: |gradient| peaks on the edge column. *)
  let p = Kfuse_apps.Sobel.pipeline ~width:16 ~height:9 () in
  let step = Image.init ~width:16 ~height:9 (fun x _ -> if x >= 8 then 1.0 else 0.0) in
  let out = Helpers.run_single p [ ("in", step) ] in
  Alcotest.(check bool) "edge detected" true (Image.get out 8 4 > 1.0);
  Alcotest.check (Helpers.float_close ()) "flat region zero" 0.0 (Image.get out 2 4)

let test_enhance_semantics () =
  (* Output is clamped to [0,1]. *)
  let p = Kfuse_apps.Enhance.pipeline ~width:8 ~height:8 () in
  let rng = Kfuse_util.Rng.create 77 in
  let img = Image.random rng ~width:8 ~height:8 ~lo:0.0 ~hi:3.0 in
  let out = Helpers.run_single p [ ("in", img) ] in
  let in_range = Image.fold (fun acc v -> acc && v >= 0.0 && v <= 1.0) true out in
  Alcotest.(check bool) "clamped" true in_range

let suite =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "harris structure" `Quick test_harris_structure;
    Alcotest.test_case "shitomasi structure" `Quick test_shitomasi_structure;
    Alcotest.test_case "sobel structure" `Quick test_sobel_structure;
    Alcotest.test_case "unsharp structure" `Quick test_unsharp_structure;
    Alcotest.test_case "enhance structure" `Quick test_enhance_structure;
    Alcotest.test_case "night structure" `Quick test_night_structure;
    Alcotest.test_case "night a-trous dilation" `Quick test_night_atrous_dilation;
    Alcotest.test_case "night op counts" `Quick test_night_op_counts;
    Alcotest.test_case "all apps interpret" `Quick test_all_apps_interpret;
    Alcotest.test_case "harris corner semantics" `Quick test_harris_response_semantics;
    Alcotest.test_case "sobel edge semantics" `Quick test_sobel_edge_semantics;
    Alcotest.test_case "enhance clamps" `Quick test_enhance_semantics;
  ]
