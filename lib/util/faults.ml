exception Fault of { point : string; hit : int }

type trigger = Nth of int | Every of int | Prob of float * int

type point_state = {
  trigger : trigger;
  rng : Rng.t option;  (* present iff trigger is Prob *)
  mutable count : int;
  mutable spent : bool;  (* a fired Nth trigger never fires again *)
}

(* Global registry.  [armed_any] lets [hit] bail with a single atomic
   load on the (overwhelmingly common) unarmed path; everything else is
   under [lock] because hits arrive from pool worker domains. *)
let lock = Mutex.create ()
let armed_any = Atomic.make false
let points : (string, point_state) Hashtbl.t = Hashtbl.create 8
let observed : (string, int) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm point trigger =
  locked (fun () ->
      let rng = match trigger with Prob (_, seed) -> Some (Rng.create seed) | _ -> None in
      Hashtbl.replace points point { trigger; rng; count = 0; spent = false };
      Hashtbl.replace observed point 0;
      Atomic.set armed_any true)

let disarm point =
  locked (fun () ->
      Hashtbl.remove points point;
      if Hashtbl.length points = 0 then Atomic.set armed_any false)

let clear () =
  locked (fun () ->
      Hashtbl.reset points;
      Hashtbl.reset observed;
      Atomic.set armed_any false)

let active () = Atomic.get armed_any

let hits point = locked (fun () -> Option.value ~default:0 (Hashtbl.find_opt observed point))

(* Shared trigger evaluation: count the hit and decide whether it
   fires.  [Some n] carries the 1-based hit count of a firing hit. *)
let eval_hit point =
  if Atomic.get armed_any then
    locked (fun () ->
        match Hashtbl.find_opt points point with
        | None -> None
        | Some st ->
          st.count <- st.count + 1;
          Hashtbl.replace observed point st.count;
          let fires =
            match st.trigger with
            | Nth n ->
              if st.spent then false
              else if st.count = n then begin
                st.spent <- true;
                true
              end
              else false
            | Every n -> n >= 1 && st.count mod n = 0
            | Prob (p, _) -> (
              match st.rng with
              | Some rng -> Rng.float rng 1.0 < p
              | None -> false)
          in
          if fires then Some st.count else None)
  else None

let hit point =
  match eval_hit point with
  | Some n -> raise (Fault { point; hit = n })
  | None -> ()

let fires point = eval_hit point <> None

let parse_clause clause =
  let clause = String.trim clause in
  if clause = "" then Error "empty clause"
  else
    match String.index_opt clause '@' with
    | Some i -> (
      let point = String.sub clause 0 i in
      let n = String.sub clause (i + 1) (String.length clause - i - 1) in
      match int_of_string_opt n with
      | Some n when n >= 1 -> Ok (point, Nth n)
      | _ -> Error (Printf.sprintf "bad hit index in %S" clause))
    | None -> (
      match String.index_opt clause '/' with
      | Some i -> (
        let point = String.sub clause 0 i in
        let n = String.sub clause (i + 1) (String.length clause - i - 1) in
        match int_of_string_opt n with
        | Some n when n >= 1 -> Ok (point, Every n)
        | _ -> Error (Printf.sprintf "bad period in %S" clause))
      | None -> (
        match String.index_opt clause '~' with
        | Some i -> (
          let point = String.sub clause 0 i in
          let rest = String.sub clause (i + 1) (String.length clause - i - 1) in
          match String.index_opt rest ':' with
          | None -> Error (Printf.sprintf "missing seed in %S (want point~P:SEED)" clause)
          | Some j -> (
            let p = String.sub rest 0 j in
            let seed = String.sub rest (j + 1) (String.length rest - j - 1) in
            match (float_of_string_opt p, int_of_string_opt seed) with
            | Some p, Some seed when p >= 0.0 && p <= 1.0 -> Ok (point, Prob (p, seed))
            | _ -> Error (Printf.sprintf "bad probability or seed in %S" clause)))
        | None -> Ok (clause, Nth 1)))

let parse_spec spec =
  let clauses =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if clauses = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc clause ->
        match (acc, parse_clause clause) with
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> e
        | Ok done_, Ok c -> Ok (c :: done_))
      (Ok []) clauses
    |> Result.map List.rev

let arm_spec spec =
  match parse_spec spec with
  | Error _ as e -> e
  | Ok clauses ->
    List.iter (fun (point, trigger) -> arm point trigger) clauses;
    Ok ()

let env_var = "KFUSE_FAULTS"

let arm_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok ()
  | Some spec -> arm_spec spec

let with_spec spec f =
  (match arm_spec spec with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Faults.with_spec: %s" msg));
  Fun.protect ~finally:clear f
