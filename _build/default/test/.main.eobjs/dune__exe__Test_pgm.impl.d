test/test_pgm.ml: Alcotest Filename Fun Helpers Kfuse_image Kfuse_util List String Sys
