type t = {
  current : string list;
  temporal : (string * int) list;
  depth : int;
}

let lag_of_name name =
  let prefix = "prev" in
  let plen = String.length prefix in
  let len = String.length name in
  if len < plen || not (String.equal (String.sub name 0 plen) prefix) then None
  else if len = plen then Some 1
  else
    let digits = String.sub name plen (len - plen) in
    if String.for_all (fun c -> c >= '0' && c <= '9') digits then
      match int_of_string_opt digits with
      | Some n when n >= 1 -> Some n
      | _ -> None
    else None

let analyze (p : Pipeline.t) =
  let current, temporal =
    List.partition_map
      (fun name ->
        match lag_of_name name with
        | None -> Left name
        | Some lag -> Right (name, lag))
      p.Pipeline.inputs
  in
  let temporal =
    List.stable_sort (fun (_, a) (_, b) -> compare a b) temporal
  in
  let depth = List.fold_left (fun acc (_, lag) -> max acc lag) 0 temporal in
  { current; temporal; depth }

let is_temporal a = a.depth > 0

let stream_input a =
  match a.current with
  | [ name ] -> Ok name
  | [] ->
      Error
        (Kfuse_util.Diag.errorf Dangling_ref
           "streaming needs exactly one current-frame input, pipeline has \
            none (all inputs are temporal)")
  | names ->
      Error
        (Kfuse_util.Diag.errorf Duplicate_name
           "streaming needs exactly one current-frame input, pipeline has \
            %d: %s"
           (List.length names)
           (String.concat ", " names))
