module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask
module Border = Kfuse_image.Border

(* The classic 19-exchange median-of-9 network (each pair (i, j) replaces
   element i with the min and element j with the max); the median ends up
   at index 4. *)
let median9_network =
  [ (1, 2); (4, 5); (7, 8); (0, 1); (3, 4); (6, 7); (1, 2); (4, 5); (7, 8);
    (0, 3); (5, 8); (4, 7); (3, 6); (1, 4); (2, 5); (4, 7); (4, 2); (6, 4);
    (4, 2) ]

let median9 taps =
  if List.length taps <> 9 then invalid_arg "Extra.median9: need exactly 9 taps";
  (* Elements are always variables, so min/max pairs duplicate only Vars;
     every exchange output gets its own register. *)
  let counter = ref 0 in
  let bindings = ref [] in
  let bind e =
    incr counter;
    let v = Printf.sprintf "rank_%d" !counter in
    bindings := (v, e) :: !bindings;
    Expr.var v
  in
  let values = Array.of_list (List.map bind taps) in
  List.iter
    (fun (i, j) ->
      let lo = bind (Expr.min values.(i) values.(j)) in
      let hi = bind (Expr.max values.(i) values.(j)) in
      values.(i) <- lo;
      values.(j) <- hi)
    median9_network;
  List.fold_left
    (fun acc (v, e) -> Expr.Let { var = v; value = e; body = acc })
    values.(4) !bindings

let default_width = 2048
let default_height = 2048

let median_pipeline ?(width = default_width) ?(height = default_height) () =
  let border = Border.Clamp in
  let taps =
    List.concat_map
      (fun dy -> List.map (fun dx -> Expr.input ~border ~dx ~dy "in") [ -1; 0; 1 ])
      [ -1; 0; 1 ]
  in
  let median = Kernel.map ~name:"median" ~inputs:[ "in" ] (median9 taps) in
  let contrast =
    let open Expr in
    Kernel.map ~name:"contrast" ~inputs:[ "median" ]
      (clamp01 ((input "median" - const 0.5) * param "gain" + const 0.5))
  in
  Pipeline.create ~name:"median" ~width ~height ~params:[ ("gain", 1.4) ]
    ~inputs:[ "in" ] [ median; contrast ]

let canny_lite_pipeline ?(width = default_width) ?(height = default_height) () =
  let border = Border.Clamp in
  let open Expr in
  let dx = Kernel.map ~name:"dx" ~inputs:[ "in" ] (conv ~border Mask.sobel_x "in") in
  let dy = Kernel.map ~name:"dy" ~inputs:[ "in" ] (conv ~border Mask.sobel_y "in") in
  let mag =
    Kernel.map ~name:"mag" ~inputs:[ "dx"; "dy" ]
      (sqrt ((input "dx" * input "dx") + (input "dy" * input "dy")))
  in
  let ridge =
    (* Keep a pixel only when it is at least as strong as its 4-neighbors
       (a direction-free stand-in for non-maximum suppression). *)
    let neighbors =
      max
        (max (input ~border ~dx:(-1) "mag") (input ~border ~dx:1 "mag"))
        (max (input ~border ~dy:(-1) "mag") (input ~border ~dy:1 "mag"))
    in
    Kernel.map ~name:"ridge" ~inputs:[ "mag" ]
      (let_ "m" (input "mag")
         (select Expr.Lt (var "m") neighbors (const 0.0) (var "m")))
  in
  let edges =
    (* Double threshold: strong edges 1.0, weak 0.5, rest 0. *)
    Kernel.map ~name:"edges" ~inputs:[ "ridge" ]
      (select Expr.Lt (input "ridge") (param "lo") (const 0.0)
         (select Expr.Lt (input "ridge") (param "hi") (const 0.5) (const 1.0)))
  in
  Pipeline.create ~name:"canny_lite" ~width ~height
    ~params:[ ("lo", 0.2); ("hi", 0.6) ]
    ~inputs:[ "in" ] [ dx; dy; mag; ridge; edges ]

let night_rgb_pipeline ?(width = 1920) ?(height = 1200) () =
  let border = Border.Clamp in
  let open Expr in
  let atrous plane step src =
    Kernel.map
      ~name:(Printf.sprintf "atrous%d_%s" step plane)
      ~inputs:[ src ]
      (Night.atrous_body ~border ~step src)
  in
  let per_plane plane =
    let a0 = atrous plane 1 plane in
    let a1 = atrous plane 2 (Printf.sprintf "atrous1_%s" plane) in
    (a0, a1)
  in
  let r0, r1 = per_plane "r" and g0, g1 = per_plane "g" and b0, b1 = per_plane "b" in
  (* Scotopic luminance from the denoised planes (Rec. 709 weights). *)
  let lum =
    Kernel.map ~name:"lum" ~inputs:[ "atrous2_r"; "atrous2_g"; "atrous2_b" ]
      ((const 0.2126 * input "atrous2_r")
      + (const 0.7152 * input "atrous2_g")
      + (const 0.0722 * input "atrous2_b"))
  in
  (* Per-plane mesopic blend towards the blue-shifted night tint, driven
     by the shared luminance. *)
  let scoto plane tint =
    Kernel.map
      ~name:("scoto_" ^ plane)
      ~inputs:[ Printf.sprintf "atrous2_%s" plane; "lum" ]
      (let_ "m"
         (clamp01 (const 1.0 - exp (neg (input "lum" / const 0.12))))
         ((var "m" * input (Printf.sprintf "atrous2_%s" plane))
         + ((const 1.0 - var "m") * const tint * input "lum")))
  in
  Pipeline.create ~name:"night_rgb" ~width ~height ~inputs:[ "r"; "g"; "b" ]
    [
      r0; r1; g0; g1; b0; b1; lum; scoto "r" 0.6; scoto "g" 0.8; scoto "b" 1.1;
    ]
