lib/core/benefit.ml: Config Float Format Kfuse_graph Kfuse_ir Kfuse_util Legality List Printf
