(** Client side of the [kfused] wire protocol.

    Thin, synchronous, one connection per {!with_connection}: connect to
    the Unix-domain socket, exchange length-prefixed JSON frames, fold
    server-side [{"status":"error"}] responses back into
    {!Kfuse_util.Diag.t}.  This is what [kfusec query] and the
    end-to-end tests are built on. *)

module Diag := Kfuse_util.Diag

type t

(** [with_connection ~socket f] connects, runs [f], and always closes
    the connection.  Connection failures (no such socket, nobody
    listening) are returned as {!Kfuse_util.Diag.Service_error}. *)
val with_connection : socket:string -> (t -> ('a, Diag.t) result) -> ('a, Diag.t) result

(** [request t req] sends one request and waits for its response.
    [Error] covers transport failures, protocol violations, and server
    [{"status":"error"}] replies alike. *)
val request : t -> Protocol.request -> (Jsonx.t, Diag.t) result

(** Convenience wrappers over {!request}. *)

val fuse : t -> Protocol.fuse_request -> (Jsonx.t, Diag.t) result

val stats : t -> (Jsonx.t, Diag.t) result

(** [metrics t] is the server's Prometheus-style text exposition. *)
val metrics : t -> (string, Diag.t) result

val ping : t -> (unit, Diag.t) result

(** [shutdown t] asks the server to stop accepting and exit its serve
    loop once in-flight connections drain. *)
val shutdown : t -> (unit, Diag.t) result
