module Pool = Kfuse_util.Pool
module Pipeline = Kfuse_ir.Pipeline
module Config = Kfuse_fusion.Config

type options = {
  cases : int;
  seed : int;
  shrink : bool;
  corpus : string option;
  max_kernels : int;
  strict_optimal : bool;
  jobs : int;
  max_failures : int;
  cache_dir : string option;
  native : bool;
  oracles : Oracle.name list option;
}

let default_options =
  {
    cases = 200;
    seed = 0;
    shrink = true;
    corpus = None;
    max_kernels = 10;
    strict_optimal = false;
    jobs = 1;
    max_failures = 10;
    cache_dir = None;
    native = false;
    oracles = None;
  }

type origin = Generated of int | Replayed of string

type failure_report = {
  origin : origin;
  oracle : Oracle.name;
  detail : string;
  pipeline : Pipeline.t;
  shrunk : Pipeline.t option;
  saved : string option;
}

type summary = {
  cases_run : int;
  corpus_replayed : int;
  corpus_errors : (string * string) list;
  failures : failure_report list;
  optimal : int;
  gaps : int;
  max_gap : float;
  beta_unchecked : int;
  feature_counts : (string * int) list;
}

(* A fresh scratch directory for the cache-replay oracle: plans written
   by an older build under the same keys would show up as bogus replay
   mismatches, so never share a directory across runs. *)
let fresh_cache_dir () =
  let base = Filename.concat (Filename.get_temp_dir_name ()) "kfuse-fuzz-cache" in
  let rec probe k =
    let dir = Printf.sprintf "%s.%d.%d" base (Unix.getpid ()) k in
    match Sys.mkdir dir 0o700 with
    | () -> dir
    | exception Sys_error _ -> if k > 1000 then base else probe (k + 1)
  in
  probe 0

let origin_label = function
  | Generated i -> Printf.sprintf "case %d" i
  | Replayed path -> Printf.sprintf "corpus %s" (Filename.basename path)

let run ?(log = fun _ -> ()) (o : options) =
  let config = Config.default in
  let pool = if o.jobs > 1 then Some (Pool.create o.jobs) else None in
  let cache_dir =
    match o.cache_dir with Some d -> d | None -> fresh_cache_dir ()
  in
  let bank =
    match o.oracles with
    | Some which -> which
    | None ->
      if o.native then Oracle.all @ [ Oracle.Native_exec; Oracle.Stream_exec ]
      else Oracle.all
  in
  let check ?(which = bank) p =
    Oracle.check ~which ?pool ~cache_dir ~strict_optimal:o.strict_optimal config p
  in
  let finally () = Option.iter Pool.shutdown pool in
  Fun.protect ~finally @@ fun () ->
  let failures = ref [] in
  let optimal = ref 0 and gaps = ref 0 and max_gap = ref 0.0 and unchecked = ref 0 in
  let feature_counts = Hashtbl.create 16 in
  let note_features p =
    List.iter
      (fun (flag, on) ->
        if on then
          Hashtbl.replace feature_counts flag
            (1 + Option.value ~default:0 (Hashtbl.find_opt feature_counts flag)))
      (Gen.feature_flags (Gen.features p))
  in
  let note_optimality = function
    | Oracle.Optimal -> incr optimal
    | Oracle.Gap g ->
      incr gaps;
      if g > !max_gap then max_gap := g
    | Oracle.Not_checked -> incr unchecked
  in
  let record ~origin ~(failure : Oracle.failure) p =
    let shrunk =
      if not o.shrink then None
      else begin
        let still_fails q =
          match (check ~which:[ failure.oracle ] q).Oracle.failure with
          | Some f -> f.Oracle.oracle = failure.oracle
          | None -> false
        in
        let m = Shrink.run ~still_fails p in
        if m == p then None else Some m
      end
    in
    let reproducer = Option.value ~default:p shrunk in
    let saved =
      Option.bind o.corpus (fun dir ->
          let seed, index =
            match origin with Generated i -> (Some o.seed, Some i) | Replayed _ -> (None, None)
          in
          match
            Corpus.save ~dir ?seed ?index
              ~oracle:(Oracle.name_to_string failure.oracle)
              ~detail:failure.detail reproducer
          with
          | Ok path -> Some path
          | Error _ -> None)
    in
    log
      (Printf.sprintf "FAIL %s: %s oracle: %s%s" (origin_label origin)
         (Oracle.name_to_string failure.oracle)
         failure.detail
         (match shrunk with
         | Some m -> Printf.sprintf " (shrunk %d -> %d kernels)" (Pipeline.num_kernels p) (Pipeline.num_kernels m)
         | None -> ""));
    failures :=
      { origin; oracle = failure.oracle; detail = failure.detail; pipeline = p; shrunk; saved }
      :: !failures
  in
  (* Phase 1: replay the corpus — previously-found bugs come first. *)
  let entries, corpus_errors =
    match o.corpus with None -> ([], []) | Some dir -> Corpus.load_dir dir
  in
  List.iter
    (fun (e : Corpus.entry) ->
      if List.length !failures < o.max_failures then begin
        let r = check e.Corpus.pipeline in
        match r.Oracle.failure with
        | Some failure -> record ~origin:(Replayed e.Corpus.path) ~failure e.Corpus.pipeline
        | None -> ()
      end)
    entries;
  (* Phase 2: fresh cases. *)
  let cases_run = ref 0 in
  (try
     for i = 0 to o.cases - 1 do
       if List.length !failures >= o.max_failures then raise Exit;
       incr cases_run;
       if i > 0 && i mod 500 = 0 then log (Printf.sprintf "... %d/%d cases" i o.cases);
       match Gen.case ~max_kernels:o.max_kernels ~seed:o.seed i with
       | exception e ->
         record ~origin:(Generated i)
           ~failure:
             {
               Oracle.oracle = Oracle.Validate_ok;
               detail = Printf.sprintf "generator raised: %s" (Printexc.to_string e);
             }
           (* A generator crash has no pipeline to attach; use the
              smallest well-formed stand-in. *)
           (Pipeline.create ~name:"gen_crash" ~width:7 ~height:7 ~inputs:[ "in0" ]
              [
                Kfuse_ir.Kernel.map ~name:"k0" ~inputs:[ "in0" ]
                  (Kfuse_ir.Expr.input "in0");
              ])
       | p ->
         note_features p;
         let r = check p in
         note_optimality r.Oracle.optimality;
         (match r.Oracle.failure with
         | Some failure -> record ~origin:(Generated i) ~failure p
         | None -> ())
     done
   with Exit -> ());
  {
    cases_run = !cases_run;
    corpus_replayed = List.length entries;
    corpus_errors;
    failures = List.rev !failures;
    optimal = !optimal;
    gaps = !gaps;
    max_gap = !max_gap;
    beta_unchecked = !unchecked;
    feature_counts =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) feature_counts []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

let failed s = s.failures <> [] || s.corpus_errors <> []

let pp_summary ppf s =
  let open Format in
  fprintf ppf "fuzz: %d generated case%s, %d corpus replay%s@." s.cases_run
    (if s.cases_run = 1 then "" else "s")
    s.corpus_replayed
    (if s.corpus_replayed = 1 then "" else "s");
  List.iter
    (fun (path, reason) -> fprintf ppf "  corpus error: %s: %s@." path reason)
    s.corpus_errors;
  let checked = s.optimal + s.gaps in
  if checked > 0 then
    fprintf ppf "optimality (DAGs small enough to enumerate): %d/%d optimal, %d gap%s (max %.6g)@."
      s.optimal checked s.gaps
      (if s.gaps = 1 then "" else "s")
      s.max_gap;
  if s.feature_counts <> [] && s.cases_run > 0 then begin
    fprintf ppf "feature coverage over generated cases:@.";
    List.iter
      (fun (flag, n) ->
        fprintf ppf "  %-16s %5d  (%3.0f%%)@." flag n
          (100.0 *. float_of_int n /. float_of_int s.cases_run))
      s.feature_counts
  end;
  match s.failures with
  | [] -> fprintf ppf "no failures.@."
  | fs ->
    fprintf ppf "%d failure%s:@." (List.length fs) (if List.length fs = 1 then "" else "s");
    List.iter
      (fun f ->
        fprintf ppf "- %s: oracle %s@.  %s@." (origin_label f.origin)
          (Oracle.name_to_string f.oracle) f.detail;
        (match f.shrunk with
        | Some m ->
          fprintf ppf "  shrunk to %d kernel%s:@.%a@." (Pipeline.num_kernels m)
            (if Pipeline.num_kernels m = 1 then "" else "s")
            Pipeline.pp m
        | None -> ());
        match f.saved with
        | Some path -> fprintf ppf "  saved: %s@." path
        | None -> ())
      fs
