test/test_distribute.ml: Alcotest Helpers Kfuse_fusion Kfuse_image Kfuse_ir Kfuse_util List Option Printf
