lib/dsl/ast.ml: Kfuse_image
