test/test_properties.ml: Array Float Format Kfuse_dsl Kfuse_fusion Kfuse_graph Kfuse_image Kfuse_ir Kfuse_util List Printf QCheck QCheck_alcotest Random String
