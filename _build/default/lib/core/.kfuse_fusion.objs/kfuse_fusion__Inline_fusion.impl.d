lib/core/inline_fusion.ml: Array Config Float Kfuse_ir Kfuse_util List Printf String Substitute
