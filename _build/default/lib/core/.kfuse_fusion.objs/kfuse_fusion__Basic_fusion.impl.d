lib/core/basic_fusion.ml: Kfuse_graph Kfuse_ir Kfuse_util Legality List
