(** PGM (portable graymap) image I/O.

    Minimal support for the netpbm grayscale formats so examples and
    users can feed real images through pipelines: P5 (binary) and P2
    (ASCII), 8-bit or 16-bit.  Float pixels in [0, 1] map linearly onto
    [0, maxval]; out-of-range values are clamped on write. *)

(** [to_string ?maxval img] encodes [img] as a binary P5 graymap.
    [maxval] defaults to 255; values above 255 use 16-bit big-endian
    samples per the netpbm specification.
    @raise Invalid_argument if [maxval] is outside [1, 65535]. *)
val to_string : ?maxval:int -> Image.t -> string

(** [of_string data] decodes a P2 or P5 graymap into floats in [0, 1].
    Rejects malformed input: bad magic, truncated headers, nonpositive
    dimensions, out-of-range maxval, samples outside [0, maxval], and
    short raster data.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> Image.t

(** [of_string_result ?file data] is {!of_string} with malformed input
    reported as a {!Kfuse_util.Diag.Pgm_format} diagnostic ([file] only
    annotates the diagnostic context).  Never raises on bad data. *)
val of_string_result : ?file:string -> string -> (Image.t, Kfuse_util.Diag.t) result

(** [write ?maxval path img] writes [to_string img] to [path]. *)
val write : ?maxval:int -> string -> Image.t -> unit

(** [write_result ?maxval path img] is {!write} with I/O failures as
    {!Kfuse_util.Diag.Io_error} diagnostics. *)
val write_result :
  ?maxval:int -> string -> Image.t -> (unit, Kfuse_util.Diag.t) result

(** [read path] loads a PGM file.
    @raise Sys_error on I/O failure, [Invalid_argument] on bad data. *)
val read : string -> Image.t

(** [read_result path] is {!read} with a missing/unreadable file as an
    {!Kfuse_util.Diag.Io_error} and malformed data as a
    {!Kfuse_util.Diag.Pgm_format} diagnostic.  Never raises. *)
val read_result : string -> (Image.t, Kfuse_util.Diag.t) result
