lib/dsl/parser.ml: Array Ast Float Kfuse_image Lexer List Printf String
