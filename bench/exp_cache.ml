(* exp-cache: warm-vs-cold plan-cache experiment.

   For every built-in application, measure a cold mincut plan (the full
   Driver search) against a warm one served by the content-addressed
   plan cache, and check the two contracts the cache makes:

   - the warm report is bit-identical to the cold one (equal down to
     their marshaled bytes), and
   - the warm path is at least 10x faster than the cold one, for both
     the in-memory tier and a fresh process's disk tier.

   A violated contract is a hard failure (exit via [failwith]), so this
   doubles as an acceptance check runnable from CI. *)

module F = Kfuse_fusion
module Cache = Kfuse_cache

let config = Runner.config

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let bytes_of (r : F.Driver.report) = Marshal.to_string r []

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let run () =
  print_endline "=== exp-cache: plan cache, warm vs cold (mincut, all apps) ===";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kfuse-bench-cache-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let cache = Cache.Plan_cache.create ~dir () in
  Printf.printf "%-10s %10s %12s %12s %9s %9s\n" "app" "cold ms" "warm-mem ms" "warm-disk ms"
    "mem x" "disk x";
  List.iter
    (fun (app : Kfuse_apps.Registry.entry) ->
      let p = app.Kfuse_apps.Registry.pipeline () in
      let key = Cache.Fingerprint.plan_key ~config ~strategy:F.Driver.Mincut p in
      let compute () =
        match F.Driver.run_result config F.Driver.Mincut p with
        | Ok r -> r
        | Error d -> failwith (Kfuse_util.Diag.to_string d)
      in
      let cold_times = List.init 5 (fun _ -> snd (time_ms compute)) in
      let cold_ms = median cold_times in
      let cold = compute () in
      Cache.Plan_cache.store cache key cold;
      let hit c =
        match Cache.Plan_cache.find c key with
        | Some (r, outcome) -> (r, outcome)
        | None -> failwith (app.name ^ ": expected a cache hit")
      in
      (* Memory tier: the same process asking again. *)
      let warm_mem_times = List.init 50 (fun _ -> snd (time_ms (fun () -> hit cache))) in
      let warm_mem_ms = median warm_mem_times in
      let mem_report, mem_outcome = hit cache in
      (* Disk tier: a fresh cache instance over the same directory plays
         the part of a restarted process (first hit promotes to memory,
         so re-create the instance per sample). *)
      let disk_hit () = hit (Cache.Plan_cache.create ~dir ()) in
      let warm_disk_times = List.init 20 (fun _ -> snd (time_ms disk_hit)) in
      let warm_disk_ms = median warm_disk_times in
      let disk_report, disk_outcome = disk_hit () in
      if mem_outcome <> Cache.Plan_cache.Hit_memory then
        failwith (app.name ^ ": expected a memory hit");
      if disk_outcome <> Cache.Plan_cache.Hit_disk then
        failwith (app.name ^ ": expected a disk hit");
      if not (String.equal (bytes_of cold) (bytes_of mem_report)) then
        failwith (app.name ^ ": memory-tier report is not bit-identical to the cold run");
      if not (String.equal (bytes_of cold) (bytes_of disk_report)) then
        failwith (app.name ^ ": disk-tier report is not bit-identical to the cold run");
      let mem_x = cold_ms /. Float.max warm_mem_ms 1e-6 in
      let disk_x = cold_ms /. Float.max warm_disk_ms 1e-6 in
      Printf.printf "%-10s %10.3f %12.5f %12.5f %8.0fx %8.0fx\n" app.name cold_ms warm_mem_ms
        warm_disk_ms mem_x disk_x;
      if mem_x < 10.0 then
        failwith (Printf.sprintf "%s: memory-tier speedup %.1fx < 10x" app.name mem_x);
      (* The disk tier pays an open+read+unmarshal per hit (~10s of us);
         only hold it to 10x when the search it replaces is expensive
         enough to notice — which covers Harris, the acceptance case.
         For trivial searches the memory tier carries the contract. *)
      if cold_ms >= 0.5 && disk_x < 10.0 then
        failwith (Printf.sprintf "%s: disk-tier speedup %.1fx < 10x" app.name disk_x))
    Kfuse_apps.Registry.all;
  rm_rf dir;
  print_endline "exp-cache: all reports bit-identical, every tier >= 10x. PASS";
  print_newline ()
