module Iset = Kfuse_util.Iset
module Imap = Kfuse_util.Imap
module Digraph = Kfuse_graph.Digraph
module Topo = Kfuse_graph.Topo
module Pipeline = Kfuse_ir.Pipeline
module Kernel = Kfuse_ir.Kernel
module Cost = Kfuse_ir.Cost

type reason =
  | Not_connected
  | Multiple_sinks of int list
  | External_output of { kernel : int; consumer : int }
  | External_input of { kernel : int; image : string }
  | Global_kernel of int
  | Resource of { fused_bytes : int; base_bytes : int; ratio : float }

let validate_block (p : Pipeline.t) block =
  if Iset.is_empty block then invalid_arg "Legality: empty block";
  Iset.iter
    (fun i ->
      if i < 0 || i >= Pipeline.num_kernels p then
        invalid_arg (Printf.sprintf "Legality: kernel index %d out of range" i))
    block

let block_sources (p : Pipeline.t) block =
  let g = Pipeline.dag p in
  Iset.filter (fun v -> Iset.is_empty (Iset.inter (Digraph.preds g v) block)) block

let block_sinks (p : Pipeline.t) block =
  let g = Pipeline.dag p in
  Iset.filter
    (fun v ->
      let succs = Digraph.succs g v in
      Iset.is_empty succs || not (Iset.subset succs block))
    block

(* Accumulated downstream stencil footprint D(v): the window of positions
   around the current pixel at which kernel [v]'s value is needed to
   compute the block's output pixel.  D(sink) is the single point;
   otherwise the union over in-block consumers c of (c's access window on
   v's output) + D(c) (Minkowski sum — Eq. 9 in window form). *)
let downstream_footprints (p : Pipeline.t) block =
  let module Fp = Kfuse_ir.Footprint in
  let g = Digraph.induced (Pipeline.dag p) block in
  let order = List.rev (Topo.sort g) in
  List.fold_left
    (fun acc v ->
      let d =
        Iset.fold
          (fun c best ->
            let consumer = Pipeline.kernel p c in
            let w =
              match
                List.assoc_opt (Pipeline.kernel p v).Kernel.name
                  (Fp.of_kernel consumer)
              with
              | Some w -> w
              | None -> Fp.point
            in
            Fp.union best (Fp.sum w (Imap.find_or ~default:Fp.point c acc)))
          (Digraph.succs g v) Fp.point
      in
      Imap.add v d acc)
    Imap.empty order

let fused_shared_bytes (config : Config.t) (p : Pipeline.t) block =
  let module Fp = Kfuse_ir.Footprint in
  validate_block p block;
  let d = downstream_footprints p block in
  (* One tile per image read with a window by some in-block kernel; the
     tile covers the reader's window extended by the reader's own
     downstream accumulation. *)
  let tiles =
    Iset.fold
      (fun v acc ->
        let dv = Imap.find_or ~default:Fp.point v d in
        List.fold_left
          (fun acc (image, w) ->
            if Fp.is_point w then acc
            else begin
              let window = Fp.sum w dv in
              match List.assoc_opt image acc with
              | Some _ ->
                List.map
                  (fun (i, w0) ->
                    if String.equal i image then (i, Fp.union w0 window) else (i, w0))
                  acc
              | None -> (image, window) :: acc
            end)
          acc
          (Fp.of_kernel (Pipeline.kernel p v)))
      block []
  in
  List.fold_left
    (fun total (_, window) -> total + Cost.tile_bytes_window config.Config.block window)
    0 tiles

let check_dependence (p : Pipeline.t) block =
  let g = Pipeline.dag p in
  let leaving =
    Iset.filter
      (fun v ->
        let succs = Digraph.succs g v in
        Iset.is_empty succs || not (Iset.subset succs block))
      block
  in
  if Iset.cardinal leaving > 1 then begin
    (* Prefer the Figure 2c diagnosis: an output consumed both inside and
       outside the block.  Otherwise the block simply has several
       independent outputs. *)
    let fig2c =
      Iset.fold
        (fun v acc ->
          match acc with
          | Some _ -> acc
          | None ->
            let succs = Digraph.succs g v in
            let outside = Iset.diff succs block in
            if (not (Iset.is_empty outside)) && not (Iset.is_empty (Iset.inter succs block))
            then Some (v, Iset.min_elt outside)
            else None)
        leaving None
    in
    match fig2c with
    | Some (kernel, consumer) -> Error (External_output { kernel; consumer })
    | None -> Error (Multiple_sinks (Iset.elements leaving))
  end
  else begin
    let sources = block_sources p block in
    let allowed =
      Iset.fold
        (fun s acc -> (Pipeline.kernel p s).Kernel.inputs @ acc)
        sources []
    in
    let violation =
      Iset.fold
        (fun v acc ->
          match acc with
          | Some _ -> acc
          | None ->
            if Iset.mem v sources then None
            else
              List.find_map
                (fun image ->
                  let produced_inside =
                    match Pipeline.producer p image with
                    | Some i -> Iset.mem i block
                    | None -> false
                  in
                  if produced_inside || List.mem image allowed then None
                  else Some (External_input { kernel = v; image }))
                (Pipeline.kernel p v).Kernel.inputs)
        block None
    in
    match violation with Some r -> Error r | None -> Ok ()
  end

let check_resource config (p : Pipeline.t) block =
  let shared_users =
    Iset.filter (fun v -> Kernel.uses_shared_memory (Pipeline.kernel p v)) block
  in
  if Iset.is_empty shared_users then Ok ()
  else begin
    let base_bytes =
      Iset.fold
        (fun v acc -> max acc (Cost.kernel_shared_bytes config.Config.block (Pipeline.kernel p v)))
        shared_users 0
    in
    let fused_bytes = fused_shared_bytes config p block in
    let ratio = float_of_int fused_bytes /. float_of_int base_bytes in
    if ratio <= config.Config.c_mshared then Ok ()
    else Error (Resource { fused_bytes; base_bytes; ratio })
  end

let check config (p : Pipeline.t) block =
  validate_block p block;
  if Iset.cardinal block = 1 then Ok ()
  else begin
    let globals = Iset.filter (fun v -> Kernel.is_global (Pipeline.kernel p v)) block in
    match Iset.min_elt_opt globals with
    | Some v -> Error (Global_kernel v)
    | None ->
      if not (Topo.is_weakly_connected (Pipeline.dag p) block) then Error Not_connected
      else begin
        match check_dependence p block with
        | Error _ as e -> e
        | Ok () -> check_resource config p block
      end
  end

let is_legal config p block = match check config p block with Ok () -> true | Error _ -> false

let name_of p i = (Pipeline.kernel p i).Kernel.name

let reason_to_string p = function
  | Not_connected -> "block is not connected"
  | Multiple_sinks vs ->
    Printf.sprintf "multiple outputs leave the block: %s"
      (String.concat ", " (List.map (name_of p) vs))
  | External_output { kernel; consumer } ->
    Printf.sprintf "external output dependence: %s is also consumed by %s outside the block"
      (name_of p kernel) (name_of p consumer)
  | External_input { kernel; image } ->
    Printf.sprintf "external input dependence: %s reads %s which is not a source input"
      (name_of p kernel) image
  | Global_kernel v -> Printf.sprintf "global kernel %s cannot be fused" (name_of p v)
  | Resource { fused_bytes; base_bytes; ratio } ->
    Printf.sprintf
      "shared memory would grow from %d to %d bytes (x%.2f, above c_Mshared)"
      base_bytes fused_bytes ratio

let pp_reason p ppf r = Format.pp_print_string ppf (reason_to_string p r)

(* Whole-partition invariant: structurally a partition of the DAG
   (disjoint, covering, no empties) and every block legal to fuse —
   the contract any strategy's output must meet before the transform is
   allowed to rewrite the pipeline.  [Partition.validate] rules out the
   inputs on which [check] would raise (empty blocks, foreign indices),
   so this never raises. *)
let check_partition config (p : Pipeline.t) partition =
  let module Diag = Kfuse_util.Diag in
  let module Partition = Kfuse_graph.Partition in
  let g = Pipeline.dag p in
  match Partition.validate g partition with
  | Error defect ->
    Error
      (Diag.errorf Diag.Invalid_partition "partition of pipeline %S is malformed: %s"
         p.Pipeline.name
         (Partition.invalid_to_string defect))
  | Ok () -> (
    let first_illegal =
      List.find_map
        (fun block ->
          match check config p block with
          | Ok () -> None
          | Error reason -> Some (block, reason))
        partition
    in
    match first_illegal with
    | None -> Ok ()
    | Some (block, reason) ->
      Error
        (Diag.errorf Diag.Invalid_partition
           "partition of pipeline %S has an illegal block {%s}: %s" p.Pipeline.name
           (String.concat ", " (List.map (name_of p) (Iset.elements block)))
           (reason_to_string p reason)))
