module Iset = Kfuse_util.Iset
module Digraph = Kfuse_graph.Digraph
module Topo = Kfuse_graph.Topo
module Partition = Kfuse_graph.Partition
module Pipeline = Kfuse_ir.Pipeline

(* Enumerate all partitions of the pipeline DAG into connected, legal
   blocks and fold [f] over them. *)
let fold_legal_partitions ?(max_kernels = 12) config (p : Pipeline.t) ~f ~init =
  Config.validate config;
  let n = Pipeline.num_kernels p in
  if n > max_kernels then
    invalid_arg
      (Printf.sprintf "Exhaustive_fusion: %d kernels exceeds the limit of %d" n max_kernels);
  let g = Pipeline.dag p in
  let edges = Benefit.all_edges config p in
  let legal = Mincut_fusion.block_legal config p edges in
  (* Subsets of [pool] containing [v] that form connected legal blocks. *)
  let candidate_blocks v pool =
    let pool_list = Iset.elements pool in
    let m = List.length pool_list in
    let acc = ref [] in
    for mask = 0 to (1 lsl m) - 1 do
      let block =
        List.fold_left
          (fun s (i, u) -> if mask land (1 lsl i) <> 0 then Iset.add u s else s)
          (Iset.singleton v)
          (List.mapi (fun i u -> (i, u)) pool_list)
      in
      if Topo.is_weakly_connected g block && (Iset.cardinal block = 1 || legal block)
      then acc := block :: !acc
    done;
    !acc
  in
  let result = ref init in
  let rec search unassigned chosen =
    match Iset.min_elt_opt unassigned with
    | None -> result := f !result (Partition.normalize chosen)
    | Some v ->
      let pool = Iset.remove v unassigned in
      List.iter
        (fun block -> search (Iset.diff unassigned block) (block :: chosen))
        (candidate_blocks v pool)
  in
  if n > 0 then search (Iset.of_range 0 (n - 1)) [];
  !result

let run_with ?max_kernels config (p : Pipeline.t) ~objective =
  let best =
    fold_legal_partitions ?max_kernels config p ~init:None ~f:(fun best partition ->
        let score = objective partition in
        match best with
        | Some (s, _) when s >= score -> best
        | Some _ | None -> Some (score, partition))
  in
  match best with
  | Some (score, partition) -> (score, partition)
  | None -> (0.0, [])

let run ?max_kernels config (p : Pipeline.t) =
  let edges = Benefit.all_edges config p in
  let block_weight block =
    List.fold_left
      (fun acc (r : Benefit.edge_report) ->
        if Iset.mem r.Benefit.src block && Iset.mem r.Benefit.dst block then
          acc +. r.Benefit.weight
        else acc)
      0.0 edges
  in
  let beta partition = List.fold_left (fun acc b -> acc +. block_weight b) 0.0 partition in
  run_with ?max_kernels config p ~objective:beta

let optimal_objective ?max_kernels config p = fst (run ?max_kernels config p)

let count_legal_partitions ?max_kernels config p =
  fold_legal_partitions ?max_kernels config p ~init:0 ~f:(fun n _ -> n + 1)
