lib/gpu/event_sim.mli: Device Kfuse_ir Perf_model
