(* kfusec: command-line driver for the kernel-fusion compiler.

   Subcommands:
     list      - list built-in benchmark applications
     fuse      - run a fusion strategy and print the report
     emit      - emit CUDA or C+OpenMP for a pipeline (fused or not)
     estimate  - estimate execution times / speedups on a GPU model
     run       - execute a pipeline on a PGM image via the interpreter
     check     - validate a pipeline and print structured diagnostics
     dsl-check - parse and validate a DSL file
     serve     - run the kfused fusion service on a Unix-domain socket
     shard-serve - run a supervised fleet of kfused shards behind a router
     query     - send one request to a running kfused
     repl      - edit a lazy pipeline; fusion is (re)planned on each flush
     fuzz      - differential fuzzing campaign over generated pipelines

   Exit codes: 0 success, 1 a diagnostic error (printed to stderr as
   "kfusec: error[KFxxxx]: ..."), 2 a malformed KFUSE_FAULTS spec, plus
   cmdliner's 124/125 for command-line and internal errors. *)

module F = Kfuse_fusion
module G = Kfuse_gpu
module Ir = Kfuse_ir
module Iset = Kfuse_util.Iset
module Stats = Kfuse_util.Stats
module Diag = Kfuse_util.Diag
module Cache = Kfuse_cache
module Svc = Kfuse_service
module Fz = Kfuse_fuzz
module Exec = Kfuse_exec
module Lz = Kfuse_lazy
open Cmdliner

let pp_diag d = Format.eprintf "kfusec: %a@." Diag.pp d

let fail_diag d =
  pp_diag d;
  1

(* Degradation warnings go to stderr so stdout stays parseable; in the
   default mode a degraded run still exits 0 — the report is valid, just
   conservative. *)
let report_warnings (r : F.Driver.report) = List.iter pp_diag r.F.Driver.warnings

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> Ok data
  | exception Sys_error msg -> Error (Diag.v ~file:path Diag.Io_error msg)

let load_pipeline ~app ~file =
  match (app, file) with
  | Some name, None -> (
    match Kfuse_apps.Registry.find name with
    | Some e -> Ok (e.Kfuse_apps.Registry.pipeline ())
    | None ->
      Error
        (Diag.errorf Diag.Io_error "unknown application %S (try: %s)" name
           (String.concat ", " Kfuse_apps.Registry.names)))
  | None, Some path -> (
    match read_file path with
    | Error _ as e -> e
    | Ok src -> Kfuse_dsl.Elaborate.parse_pipeline_diag ~file:path src)
  | Some _, Some _ -> Error (Diag.v Diag.Io_error "pass either --app or a FILE, not both")
  | None, None -> Error (Diag.v Diag.Io_error "pass --app NAME or a DSL FILE")

(* Validate before fusing: errors abort, warnings (e.g. an empty
   pipeline) are surfaced but not fatal. *)
let load_validated ~app ~file =
  match load_pipeline ~app ~file with
  | Error _ as e -> e
  | Ok p -> (
    let diags = Ir.Validate.pipeline p in
    List.iter pp_diag (List.filter (fun d -> not (Diag.is_error d)) diags);
    match List.filter Diag.is_error diags with
    | [] -> Ok p
    | d :: _ -> Error d)

let strategy_conv =
  let parse s =
    match F.Driver.strategy_of_string s with
    | Some st -> Ok st
    | None -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (F.Driver.strategy_to_string s) in
  Arg.conv (parse, print)

let device_conv =
  let parse s =
    match G.Device.find s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown device %S (gtx745, gtx680, k20c)" s))
  in
  let print ppf (d : G.Device.t) = Format.pp_print_string ppf d.G.Device.name in
  Arg.conv (parse, print)

(* ---- the shared driver flag set ----

   Every driver-backed subcommand (fuse, emit, run, estimate, dot,
   explain, serve, query) builds on this one term, so the flags behave
   identically everywhere: pipeline selection (--app/FILE), the fusion
   model (--c-mshared/--gamma/--tg), execution (-j/--strict/--budget-ms),
   and the plan cache (--cache/--cache-dir). *)

let app_arg =
  Arg.(value & opt (some string) None & info [ "a"; "app" ] ~docv:"NAME" ~doc:"Built-in application name.")

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Pipeline DSL file.")

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv F.Driver.Mincut
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:"Fusion strategy: baseline, basic, greedy, or mincut.")

let cmshared_arg =
  Arg.(
    value
    & opt float F.Config.default.F.Config.c_mshared
    & info [ "c-mshared" ] ~docv:"RATIO" ~doc:"Shared-memory growth threshold of Eq. 2.")

let gamma_arg =
  Arg.(
    value
    & opt float F.Config.default.F.Config.gamma
    & info [ "gamma" ] ~docv:"CYCLES" ~doc:"Extra per-fusion gain term of Eq. 12.")

let tg_arg =
  Arg.(
    value
    & opt float F.Config.default.F.Config.tg
    & info [ "tg" ] ~docv:"CYCLES" ~doc:"Global-memory latency used by the benefit model.")

let config_of ~c_mshared ~gamma ~tg =
  { F.Config.default with F.Config.c_mshared; gamma; tg }

let jobs_arg =
  Arg.(
    value
    & opt int (Kfuse_util.Pool.default_size ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains used to parallelize the fusion search and the measurement \
           simulation (default: the recommended domain count; 1 is fully serial). \
           Output is bit-identical for every N.")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Fail fast: a fusion strategy that raises, exceeds the budget, or emits \
           an invalid partition is a fatal error instead of degrading to the \
           baseline partition with a warning.")

let budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget for the fusion search.  A strategy running past it \
           falls back to the baseline partition (or fails under $(b,--strict)).")

let cache_flag =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Serve fusion plans from the content-addressed plan cache (and store \
           fresh ones), keyed by the pipeline's canonical structure and the \
           fusion-model parameters.  Uses the default cache directory unless \
           $(b,--cache-dir) is given.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "On-disk plan cache directory (implies $(b,--cache); default \
           \\$XDG_CACHE_HOME/kfuse or ~/.cache/kfuse).")

let plan_cache_of ~cache ~cache_dir =
  match (cache, cache_dir) with
  | false, None -> None
  | _, dir ->
    let dir = Option.value ~default:(Cache.Plan_cache.default_dir ()) dir in
    Some (Cache.Plan_cache.create ~dir ())

type common = {
  app : string option;
  file : string option;
  config : F.Config.t;
  jobs : int;
  strict : bool;
  budget_ms : float option;
  cache : Cache.Plan_cache.t option;
}

let common_term =
  let mk app file c_mshared gamma tg jobs strict budget_ms cache cache_dir =
    {
      app;
      file;
      config = config_of ~c_mshared ~gamma ~tg;
      jobs;
      strict;
      budget_ms;
      cache = plan_cache_of ~cache ~cache_dir;
    }
  in
  Term.(
    const mk $ app_arg $ file_arg $ cmshared_arg $ gamma_arg $ tg_arg $ jobs_arg
    $ strict_arg $ budget_arg $ cache_flag $ cache_dir_arg)

(* Run a subcommand body with a -j sized domain pool. *)
let with_jobs jobs f =
  if jobs < 1 then begin
    Format.eprintf "kfusec: --jobs must be >= 1@.";
    1
  end
  else Kfuse_util.Pool.with_pool jobs f

(* The shared subcommand spine: load, validate, size the pool, and hand
   (pool, pipeline) to the body.  Every driver-backed subcommand used to
   open with this same three-step boilerplate. *)
let with_loaded (c : common) k =
  match load_validated ~app:c.app ~file:c.file with
  | Error d -> fail_diag d
  | Ok p -> with_jobs c.jobs (fun pool -> k pool p)

(* Driver entry shared by every subcommand: consult the plan cache when
   enabled (the outcome goes to stderr so stdout stays the report), run
   the search otherwise. *)
let run_driver ?(optimize = false) ?(inline = false) ~pool ~strategy (c : common) p =
  let compute () =
    F.Driver.run_result ~optimize ~inline ~pool ~strict:c.strict ?budget_ms:c.budget_ms
      c.config strategy p
  in
  match c.cache with
  | None -> compute ()
  | Some pc -> (
    let key = Cache.Fingerprint.plan_key ~config:c.config ~strategy ~optimize ~inline p in
    match Cache.Plan_cache.find_or_compute pc key compute with
    | Error _ as e -> e
    | Ok (r, outcome) ->
      Format.eprintf "kfusec: plan cache: %s@." (Cache.Plan_cache.outcome_to_string outcome);
      Ok r)

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run the simplify and CSE cleanup passes over fused kernels.")

let inline_arg =
  Arg.(
    value & flag
    & info [ "inline" ]
        ~doc:"Run the producer-inlining pre-pass (eliminates cheap shared \
              intermediates the partition model must keep).")

let distribute_arg =
  Arg.(
    value & flag
    & info [ "distribute" ]
        ~doc:"Split separable convolutions into 1-D passes before fusing \
              (kernel distribution, the paper's future work).")

let backend_arg =
  let backend_conv =
    Arg.conv
      ( (function
        | "cuda" -> Ok `Cuda
        | "cpu" | "c" | "openmp" -> Ok `Cpu
        | s -> Error (`Msg (Printf.sprintf "unknown backend %S (cuda, cpu)" s))),
        fun ppf b ->
          Format.pp_print_string ppf (match b with `Cuda -> "cuda" | `Cpu -> "cpu") )
  in
  Arg.(
    value
    & opt backend_conv `Cuda
    & info [ "b"; "backend" ] ~docv:"BACKEND" ~doc:"Code generator: cuda or cpu (C + OpenMP).")

let fused_kernel_names (p : Ir.Pipeline.t) (r : F.Driver.report) =
  List.filter_map
    (fun b ->
      if Iset.cardinal b >= 2 then
        Some (Ir.Pipeline.kernel p (Iset.min_elt (F.Legality.block_sinks p b))).Ir.Kernel.name
      else None)
    r.F.Driver.partition

(* ---- list ---- *)

let list_cmd =
  let doc = "List the built-in benchmark applications." in
  let run () =
    List.iter
      (fun (e : Kfuse_apps.Registry.entry) ->
        let p = e.Kfuse_apps.Registry.pipeline () in
        Format.printf "%-10s %d kernels, %dx%dx%d  %s@." e.name
          (Ir.Pipeline.num_kernels p) p.Ir.Pipeline.width p.Ir.Pipeline.height
          p.Ir.Pipeline.channels e.description)
      Kfuse_apps.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---- fuse ---- *)

let fuse_cmd =
  let doc = "Run a fusion strategy and print the partition report." in
  let run common strategy inline distribute =
    with_loaded common @@ fun pool p ->
    let p, split = if distribute then F.Distribute.split_all p else (p, []) in
    if split <> [] then Format.printf "distributed: %s@." (String.concat ", " split);
    match run_driver ~inline ~pool ~strategy common p with
    | Error d -> fail_diag d
    | Ok r ->
      report_warnings r;
      Format.printf "%a@." F.Driver.pp_report r;
      0
  in
  Cmd.v
    (Cmd.info "fuse" ~doc)
    Term.(const run $ common_term $ strategy_arg $ inline_arg $ distribute_arg)

(* ---- emit ---- *)

let emit_cmd =
  let doc = "Emit CUDA or C+OpenMP source for a pipeline after fusion." in
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let run common strategy optimize backend output =
    with_loaded common @@ fun pool p ->
    match run_driver ~optimize ~pool ~strategy common p with
    | Error d -> fail_diag d
    | Ok r -> (
      report_warnings r;
      let source =
        match backend with
        | `Cuda -> Kfuse_codegen.Lower.emit_pipeline r.F.Driver.fused
        | `Cpu -> Kfuse_codegen.Lower_cpu.emit_pipeline r.F.Driver.fused
      in
      match output with
      | None ->
        print_string source;
        0
      | Some path -> (
        match
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc source)
        with
        | () ->
          Format.printf "wrote %s (%d kernels)@." path
            (Ir.Pipeline.num_kernels r.F.Driver.fused);
          0
        | exception Sys_error msg -> fail_diag (Diag.v ~file:path Diag.Io_error msg)))
  in
  Cmd.v
    (Cmd.info "emit" ~doc)
    Term.(const run $ common_term $ strategy_arg $ optimize_arg $ backend_arg $ output_arg)

(* ---- run ---- *)

let exec_mode_arg =
  let mode_conv =
    Arg.conv
      ( (function
        | "auto" -> Ok None
        | s -> (
          match Exec.Native.mode_of_string s with
          | Some m -> Ok (Some m)
          | None ->
            Error (`Msg (Printf.sprintf "unknown exec mode %S (auto, dlopen, subprocess)" s)))),
        fun ppf m ->
          Format.pp_print_string ppf
            (match m with None -> "auto" | Some m -> Exec.Native.mode_to_string m) )
  in
  Arg.(
    value
    & opt mode_conv None
    & info [ "exec-mode" ] ~docv:"MODE"
        ~doc:
          "Native execution mode: $(b,dlopen) (load the compiled shared object \
           in-process), $(b,subprocess) (standalone executable + file \
           marshalling), or $(b,auto) (dlopen, falling back to subprocess if \
           the object cannot be loaded).")

(* The native backend keeps compiled artifacts under a [native]
   subdirectory of the plan-cache directory, so --cache-dir relocates
   both caches together. *)
let native_cache_dir (c : common) =
  Option.map
    (fun d -> Filename.concat d "native")
    (Option.bind c.cache Cache.Plan_cache.dir)

let run_cmd =
  let doc = "Execute a pipeline on a PGM image (interpreter or compiled native code)." in
  let input_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "i"; "input" ] ~docv:"FILE.pgm" ~doc:"Input image (P2/P5 graymap).")
  in
  let output_arg =
    Arg.(
      value & opt string "out.pgm"
      & info [ "o"; "output" ] ~docv:"FILE.pgm"
          ~doc:"Output image path (multi-output pipelines add the kernel name).")
  in
  let native_arg =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:
            "Compile the fused pipeline to C + OpenMP with the host toolchain \
             and execute the compiled code instead of the interpreter.  The \
             result is still checked against the interpreter (see \
             $(b,--no-verify)); artifacts are cached by plan fingerprint.  \
             Requires a C compiler (KF0902 otherwise; set $(b,KFUSE_CC) to pin \
             one).")
  in
  let no_verify_arg =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:
            "With $(b,--native): skip the interpreter cross-check (faster on \
             large images, but drops the max-abs-diff report).")
  in
  let run common strategy input output native exec_mode no_verify =
    with_loaded common @@ fun pool p ->
    match p.Ir.Pipeline.inputs with
    | [ input_name ] -> (
      match Kfuse_image.Pgm.read_result input with
      | Error d -> fail_diag d
      | Ok img -> (
        let p =
          (* Re-elaborate at the image's size so any pipeline fits any
             input: rebuild with the same kernels. *)
          Ir.Pipeline.create ~name:p.Ir.Pipeline.name
            ~width:(Kfuse_image.Image.width img)
            ~height:(Kfuse_image.Image.height img)
            ~channels:p.Ir.Pipeline.channels ~params:p.Ir.Pipeline.params
            ~inputs:p.Ir.Pipeline.inputs
            (Array.to_list p.Ir.Pipeline.kernels)
        in
        match run_driver ~pool ~strategy common p with
        | Error d -> fail_diag d
        | Ok r -> (
          report_warnings r;
          let env = Ir.Eval.env_of_list [ (input_name, img) ] in
          let computed =
            if not native then Ok (Ir.Eval.run_outputs r.F.Driver.fused env)
            else
              match
                Exec.Native.run ?mode:exec_mode ?cache_dir:(native_cache_dir common)
                  r.F.Driver.fused
                  [ (input_name, img) ]
              with
              | Error d -> Error d
              | Ok nr ->
                List.iter pp_diag nr.Exec.Native.warnings;
                Format.eprintf
                  "kfusec: native (%s): compile %.1f ms%s, exec %.2f ms@."
                  (Exec.Native.mode_to_string nr.Exec.Native.mode_used)
                  nr.Exec.Native.compile_ms
                  (if nr.Exec.Native.cached then " (cached)" else "")
                  nr.Exec.Native.exec_ms;
                if not no_verify then begin
                  let reference = Ir.Eval.run_outputs r.F.Driver.fused env in
                  let diff =
                    List.fold_left2
                      (fun acc (_, a) (_, b) ->
                        Float.max acc (Kfuse_image.Image.max_abs_diff a b))
                      0.0 nr.Exec.Native.outputs reference
                  in
                  Format.printf "native max-abs-diff vs interpreter: %g@." diff
                end;
                Ok nr.Exec.Native.outputs
          in
          match computed with
          | Error d -> fail_diag d
          | Ok outs -> (
          match outs with
          | [ (_, result) ] -> (
            match Kfuse_image.Pgm.write_result output result with
            | Error d -> fail_diag d
            | Ok () ->
              Format.printf "wrote %s (%dx%d, %d fused kernels)@." output
                (Kfuse_image.Image.width result)
                (Kfuse_image.Image.height result)
                (Ir.Pipeline.num_kernels r.F.Driver.fused);
              0)
          | many ->
            let code = ref 0 in
            List.iter
              (fun (name, result) ->
                let path =
                  Printf.sprintf "%s.%s.pgm" (Filename.remove_extension output) name
                in
                match Kfuse_image.Pgm.write_result path result with
                | Error d -> code := fail_diag d
                | Ok () -> Format.printf "wrote %s@." path)
              many;
            !code))))
    | inputs ->
      Format.eprintf "kfusec: run supports single-input pipelines (found %d inputs)@."
        (List.length inputs);
      1
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run $ common_term $ strategy_arg $ input_arg $ output_arg $ native_arg
      $ exec_mode_arg $ no_verify_arg)

(* ---- estimate ---- *)

let estimate_cmd =
  let doc = "Estimate execution time on a GPU model, per strategy." in
  let device_arg =
    Arg.(
      value
      & opt device_conv G.Device.gtx680
      & info [ "d"; "device" ] ~docv:"DEVICE" ~doc:"GPU model: gtx745, gtx680, or k20c.")
  in
  let run common device =
    with_loaded common @@ fun pool p ->
    Format.printf "pipeline %s on %a@." p.Ir.Pipeline.name G.Device.pp device;
    let results =
      List.fold_left
        (fun acc s ->
          match acc with
          | Error _ as e -> e
          | Ok acc -> (
            match run_driver ~pool ~strategy:s common p with
            | Error d -> Error d
            | Ok r ->
              report_warnings r;
              let quality =
                match s with
                | F.Driver.Basic -> G.Perf_model.Basic_codegen
                | F.Driver.Baseline | F.Driver.Greedy | F.Driver.Mincut ->
                  G.Perf_model.Optimized
              in
              let m =
                G.Sim.measure ~pool device ~quality
                  ~fused_kernels:(fused_kernel_names p r) r.F.Driver.fused
              in
              Ok ((s, r, m) :: acc)))
        (Ok []) F.Driver.all_strategies
    in
    match results with
    | Error d -> fail_diag d
    | Ok results ->
      let results = List.rev results in
      let baseline =
        List.find_map
          (fun (s, _, m) -> if s = F.Driver.Baseline then Some m else None)
          results
      in
      List.iter
        (fun (s, r, m) ->
          Format.printf "  %-9s %2d kernels  median %8.3f ms  speedup %.3f@."
            (F.Driver.strategy_to_string s)
            (Ir.Pipeline.num_kernels r.F.Driver.fused)
            m.G.Sim.summary.Stats.median
            (match baseline with Some b -> G.Sim.speedup b m | None -> 1.0))
        results;
      0
  in
  Cmd.v (Cmd.info "estimate" ~doc) Term.(const run $ common_term $ device_arg)

(* ---- explain ---- *)

let explain_cmd =
  let doc = "Narrate every fusion decision for a pipeline." in
  let run common =
    with_loaded common @@ fun _pool p ->
    print_string (F.Explain.report common.config p);
    0
  in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const run $ common_term)

(* ---- dot ---- *)

let dot_cmd =
  let doc = "Render a pipeline DAG as Graphviz DOT, with the fusion partition." in
  let weights_arg =
    Arg.(
      value & flag
      & info [ "w"; "weights" ] ~doc:"Label edges with the benefit-model weights.")
  in
  let run common strategy weights =
    with_loaded common @@ fun pool p ->
    match run_driver ~pool ~strategy common p with
    | Error d -> fail_diag d
    | Ok r ->
      report_warnings r;
      let edge_labels =
        if weights then
          Some
            (fun u v -> Some (Printf.sprintf "%.3g" (F.Benefit.edge_weight common.config p u v)))
        else None
      in
      print_string (Kfuse_codegen.Dot.emit ~partition:r.F.Driver.partition ?edge_labels p);
      0
  in
  Cmd.v
    (Cmd.info "dot" ~doc)
    Term.(const run $ common_term $ strategy_arg $ weights_arg)

(* ---- unparse ---- *)

let unparse_cmd =
  let doc = "Print a built-in application as DSL source text." in
  let app_required =
    Arg.(
      required
      & opt (some string) None
      & info [ "a"; "app" ] ~docv:"NAME" ~doc:"Built-in application name.")
  in
  let run app =
    match Kfuse_apps.Registry.find app with
    | None ->
      Format.eprintf "kfusec: unknown application %S@." app;
      1
    | Some e -> (
      match Kfuse_dsl.Unparse.pipeline (e.Kfuse_apps.Registry.pipeline ()) with
      | Ok text ->
        print_string text;
        0
      | Error reason ->
        Format.eprintf "kfusec: cannot unparse: %s@." reason;
        1)
  in
  Cmd.v (Cmd.info "unparse" ~doc) Term.(const run $ app_required)

(* ---- check ---- *)

let check_cmd =
  let doc =
    "Validate a pipeline (DSL file or built-in app) and print every structured \
     diagnostic: cycles, dangling or duplicate kernel ids, empty iteration spaces, \
     oversized stencil masks, header incompatibilities."
  in
  let run app file =
    match load_pipeline ~app ~file with
    | Error d -> fail_diag d
    | Ok p ->
      let diags = Ir.Validate.pipeline p in
      List.iter pp_diag diags;
      if List.exists Diag.is_error diags then 1
      else begin
        let what =
          match file with Some f -> f | None -> Option.value ~default:"pipeline" app
        in
        Format.printf "%s: OK (%d kernels, %dx%dx%d%s)@." what (Ir.Pipeline.num_kernels p)
          p.Ir.Pipeline.width p.Ir.Pipeline.height p.Ir.Pipeline.channels
          (match diags with [] -> "" | _ -> ", with warnings");
        0
      end
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ app_arg $ file_arg)

(* ---- dsl-check ---- *)

let dsl_check_cmd =
  let doc = "Parse and validate a pipeline DSL file." in
  let file_required =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Pipeline DSL file.")
  in
  let run path =
    match load_validated ~app:None ~file:(Some path) with
    | Ok p ->
      Format.printf "%s: OK (%d kernels, %dx%dx%d)@." path (Ir.Pipeline.num_kernels p)
        p.Ir.Pipeline.width p.Ir.Pipeline.height p.Ir.Pipeline.channels;
      0
    | Error d -> fail_diag d
  in
  Cmd.v (Cmd.info "dsl-check" ~doc) Term.(const run $ file_required)

(* ---- serve / query: the kfused service ---- *)

let default_socket () =
  let dir =
    match Sys.getenv_opt "XDG_RUNTIME_DIR" with
    | Some d when d <> "" -> d
    | _ -> Filename.get_temp_dir_name ()
  in
  Filename.concat dir "kfused.sock"

let socket_arg =
  Arg.(
    value
    & opt string (default_socket ())
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the service listens on (default \
              \\$XDG_RUNTIME_DIR/kfused.sock).")

let serve_cmd =
  let doc = "Run kfused: serve fusion plans over a Unix-domain socket." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Starts the fusion service: a length-prefixed JSON protocol over a \
         Unix-domain socket.  Each request names a built-in application or \
         carries pipeline DSL source; the reply is the fusion report.  Plans \
         are memoized in the content-addressed plan cache, shared by every \
         client; $(b,--cache)/$(b,--cache-dir) add the on-disk tier so plans \
         survive restarts.  Concurrent clients are served on their own \
         threads over one shared domain pool.";
      `P
        "Stop the server with a $(b,query --shutdown) request (or a signal; \
         a stale socket file left behind is replaced on the next start).";
    ]
  in
  let capacity_arg =
    Arg.(
      value & opt int 256
      & info [ "cache-capacity" ] ~docv:"N" ~doc:"In-memory plan cache capacity.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 16
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Connections served concurrently (worker threads).  Connections \
             beyond this wait in the bounded admission queue.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission queue bound: connections accepted while all $(b,--max-conns) \
             workers are busy wait here; past it they are shed with a typed \
             KF0803 overloaded reply instead of queueing forever.")
  in
  let request_timeout_arg =
    Arg.(
      value & opt float 30_000.0
      & info [ "request-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-request wall-clock deadline, also armed as the connection's \
             socket receive/send timeout: a slow or vanished peer frees its \
             worker slot with a KF0804 reply, and a fusion search is \
             budget-capped to the remaining deadline.  0 disables.")
  in
  let drain_timeout_arg =
    Arg.(
      value & opt float 5_000.0
      & info [ "drain-timeout" ] ~docv:"MS"
          ~doc:
            "On SIGTERM/SIGINT or a shutdown request: stop accepting, let \
             in-flight requests finish for up to MS milliseconds, then \
             forcibly close the stragglers and remove the socket.")
  in
  let sandbox_arg =
    let policy_conv =
      Arg.conv
        ( (fun s ->
            match Exec.Supervisor.policy_of_string s with
            | Some p -> Ok p
            | None -> Error (`Msg "expected on, off or dlopen-trusted")),
          fun ppf p -> Format.pp_print_string ppf (Exec.Supervisor.policy_to_string p) )
    in
    Arg.(
      value
      & opt policy_conv Exec.Supervisor.Sandboxed
      & info [ "exec-sandbox" ] ~docv:"POLICY"
          ~doc:
            "How fuse_exec runs generated native code.  $(b,on) (default): \
             every execution is a supervised fork/exec subprocess under \
             rlimits and a deadline watchdog — a plan that segfaults, loops \
             or exhausts memory yields a typed KF0905/KF0906/KF0907 reply \
             and never harms the daemon.  $(b,dlopen-trusted): allow the \
             fast in-process dlopen path (trusts codegen); subprocess runs \
             keep their rlimits.  $(b,off): no sandbox, no circuit breaker.")
  in
  let crash_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "crash-dir" ] ~docv:"DIR"
          ~doc:
            "Directory receiving crash artifacts: each native-execution \
             failure saves the plan's pipeline as a fuzz-corpus-compatible \
             .pipe file (seed, toolchain id and diagnostic in the header) \
             that $(b,kfusec fuzz --corpus DIR) can replay and shrink.  \
             Default: crash-corpus under the cache directory.")
  in
  let max_streams_arg =
    Arg.(
      value & opt int 64
      & info [ "max-streams" ] ~docv:"N"
          ~doc:
            "Concurrently open stream sessions; a stream_open beyond this is \
             shed with a typed KF0803 reply.")
  in
  let stream_queue_arg =
    Arg.(
      value & opt int 4
      & info [ "stream-queue" ] ~docv:"N"
          ~doc:
            "Per-session in-flight push bound; a stream_push beyond it is \
             shed with KF0805 before touching the stream's temporal state, \
             so the client can retry the frame verbatim.")
  in
  let stream_idle_arg =
    Arg.(
      value & opt float 60_000.0
      & info [ "stream-idle-ms" ] ~docv:"MS"
          ~doc:
            "Idle-expiry horizon: sessions untouched for MS milliseconds are \
             reaped lazily, releasing their pinned native plan.  0 disables.")
  in
  let run common socket capacity max_conns queue request_timeout_ms drain_timeout_ms
      exec_sandbox crash_dir max_streams stream_queue stream_idle_ms =
    if common.app <> None || common.file <> None then begin
      Format.eprintf "kfusec: serve takes no pipeline; clients send them per request@.";
      1
    end
    else if capacity < 1 then begin
      Format.eprintf "kfusec: --cache-capacity must be >= 1@.";
      1
    end
    else
      with_jobs common.jobs @@ fun pool ->
      let dir = Option.bind common.cache Cache.Plan_cache.dir in
      let cache = Cache.Plan_cache.create ~capacity ?dir () in
      match
        Svc.Server.start ~socket ~cache ~pool ?budget_ms:common.budget_ms ~max_conns
          ~queue ~request_timeout_ms ~drain_timeout_ms ~exec_sandbox ?crash_dir
          ~max_streams ~stream_queue ~stream_idle_ms ()
      with
      | Error d -> fail_diag d
      | Ok server ->
        (* SIGTERM/SIGINT initiate a graceful drain: stop accepting,
           finish in-flight requests up to --drain-timeout, remove the
           socket.  [wait] below performs the drain on this thread. *)
        let graceful = Sys.Signal_handle (fun _ -> Svc.Server.signal_stop server) in
        List.iter
          (fun s -> try Sys.set_signal s graceful with Invalid_argument _ | Sys_error _ -> ())
          [ Sys.sigterm; Sys.sigint ];
        Format.printf
          "kfused: listening on %s (cache %d entries%s, %d workers + %d queue, exec \
           sandbox %s)@."
          socket capacity
          (match dir with Some d -> ", disk tier " ^ d | None -> ", memory only")
          max_conns queue
          (Exec.Supervisor.policy_to_string exec_sandbox);
        Svc.Server.wait server;
        Format.printf "kfused: shut down@.";
        0
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ common_term $ socket_arg $ capacity_arg $ max_conns_arg $ queue_arg
      $ request_timeout_arg $ drain_timeout_arg $ sandbox_arg $ crash_dir_arg
      $ max_streams_arg $ stream_queue_arg $ stream_idle_arg)

(* ---- shard-serve: the sharded fleet ---- *)

let shard_serve_cmd =
  let doc = "Run a supervised kfused fleet: K shard servers behind one router." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Launches $(b,--shards) full kfused servers, each on its own socket \
         under $(b,--shard-dir), sharing one content-addressed disk plan \
         cache, plus a router front-end on $(b,--socket) speaking the \
         unchanged client protocol.  Requests are mapped to shards by the \
         pipeline's rename-invariant structural fingerprint, so repeated \
         variants of one pipeline keep hitting one shard's warm in-memory \
         cache; identical concurrent cold requests are coalesced into a \
         single plan search.";
      `P
        "The supervisor health-checks each shard (protocol-level ping), \
         restarts crashes with exponential backoff, and trips a per-shard \
         circuit breaker on a restart storm: the shard is marked dead and \
         its keyspace reroutes to neighbors, each rerouted reply carrying a \
         typed KF0807 degraded-locality warning.  When no shard is live the \
         client gets a retryable KF0808 error — never a torn frame.  \
         SIGTERM drains the whole fleet: router edge first, then workers, \
         then each shard in parallel.";
    ]
  in
  let shard_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard-dir" ] ~docv:"DIR"
          ~doc:
            "Directory holding the per-shard sockets ($(b,shard-<i>.sock)), \
             logs ($(b,shard-<i>.log)) and, unless $(b,--cache-dir) says \
             otherwise, the shared disk plan cache.  Default: \
             $(b,kfused-shards) next to the router socket.")
  in
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"K" ~doc:"Shard server processes to supervise.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 256
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Per-shard in-memory plan cache capacity.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 16
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Router connections served concurrently; also each shard's own \
             worker count.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Router admission queue bound; past it connections are shed with \
             a typed KF0803 reply.")
  in
  let request_timeout_arg =
    Arg.(
      value & opt float 30_000.0
      & info [ "request-timeout-ms" ] ~docv:"MS"
          ~doc:"Per-request wall-clock deadline at the router.  0 disables.")
  in
  let forward_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "forward-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Router-to-shard deadline per forwarded request (default: the \
             request timeout).")
  in
  let drain_timeout_arg =
    Arg.(
      value & opt float 5_000.0
      & info [ "drain-timeout" ] ~docv:"MS"
          ~doc:"Router in-flight drain budget on shutdown.")
  in
  let shard_grace_arg =
    Arg.(
      value & opt float 2_000.0
      & info [ "shard-grace-ms" ] ~docv:"MS"
          ~doc:
            "Per-shard SIGTERM grace during fleet drain; SIGKILL past it.")
  in
  let health_interval_arg =
    Arg.(
      value & opt float 250.0
      & info [ "health-interval-ms" ] ~docv:"MS"
          ~doc:"Supervisor tick: ping every live shard this often.")
  in
  let health_timeout_arg =
    Arg.(
      value & opt float 1_000.0
      & info [ "health-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Ping deadline; $(b,--max-ping-misses) consecutive misses kill \
             the hung shard (it then takes the normal restart path).")
  in
  let storm_threshold_arg =
    Arg.(
      value & opt int Svc.Shard.default_config.storm_threshold
      & info [ "storm-threshold" ] ~docv:"N"
          ~doc:
            "Consecutive rapid failures (each within \
             $(b,--storm-window-ms) of its spawn) that mark a shard dead.")
  in
  let storm_window_arg =
    Arg.(
      value & opt float Svc.Shard.default_config.storm_window_ms
      & info [ "storm-window-ms" ] ~docv:"MS"
          ~doc:"A death within MS of its spawn counts toward the storm.")
  in
  let backoff_arg =
    Arg.(
      value & opt float Svc.Shard.default_config.restart_backoff_ms
      & info [ "restart-backoff-ms" ] ~docv:"MS"
          ~doc:"Base respawn delay; doubles per rapid failure.")
  in
  let max_backoff_arg =
    Arg.(
      value & opt float Svc.Shard.default_config.max_restart_backoff_ms
      & info [ "max-restart-backoff-ms" ] ~docv:"MS" ~doc:"Respawn delay cap.")
  in
  let cooldown_arg =
    Arg.(
      value & opt float Svc.Shard.default_config.dead_cooldown_ms
      & info [ "dead-cooldown-ms" ] ~docv:"MS"
          ~doc:
            "Dead shard half-open probe interval: one respawn attempt per \
             cooldown; a rapid failure re-marks it dead.  0 disables (dead \
             stays dead until restart).")
  in
  let ping_misses_arg =
    Arg.(
      value & opt int Svc.Shard.default_config.max_ping_misses
      & info [ "max-ping-misses" ] ~docv:"N"
          ~doc:"Consecutive missed pings before a hung shard is killed.")
  in
  let sandbox_arg =
    let policy_conv =
      Arg.conv
        ( (fun s ->
            match Exec.Supervisor.policy_of_string s with
            | Some p -> Ok p
            | None -> Error (`Msg "expected on, off or dlopen-trusted")),
          fun ppf p -> Format.pp_print_string ppf (Exec.Supervisor.policy_to_string p) )
    in
    Arg.(
      value
      & opt policy_conv Exec.Supervisor.Sandboxed
      & info [ "exec-sandbox" ] ~docv:"POLICY"
          ~doc:"Per-shard fuse_exec sandbox policy (see $(b,kfusec serve)).")
  in
  let run socket shard_dir shards cache_dir capacity max_conns queue request_timeout_ms
      forward_timeout_ms drain_timeout_ms shard_grace_ms health_interval_ms
      health_timeout_ms storm_threshold storm_window_ms restart_backoff_ms
      max_restart_backoff_ms dead_cooldown_ms max_ping_misses exec_sandbox =
    if capacity < 1 then begin
      Format.eprintf "kfusec: --cache-capacity must be >= 1@.";
      1
    end
    else
      let dir =
        match shard_dir with
        | Some d -> d
        | None -> Filename.concat (Filename.dirname socket) "kfused-shards"
      in
      (* The shared disk tier is the point of the topology: every shard
         stores and finds plans in one content-addressed directory, so a
         rerouted request degrades to a disk hit, not a recompute. *)
      let cache_dir =
        match cache_dir with Some d -> d | None -> Filename.concat dir "cache"
      in
      let shard_argv ~index:_ ~socket =
        [
          Sys.executable_name; "serve"; "--socket"; socket; "--cache-dir"; cache_dir;
          "--cache-capacity"; string_of_int capacity;
          "--max-conns"; string_of_int max_conns;
          "--request-timeout-ms"; string_of_float request_timeout_ms;
          "--exec-sandbox"; Exec.Supervisor.policy_to_string exec_sandbox;
        ]
      in
      let shard_config =
        {
          Svc.Shard.storm_threshold;
          storm_window_ms;
          restart_backoff_ms;
          max_restart_backoff_ms;
          dead_cooldown_ms;
          max_ping_misses;
        }
      in
      match
        Svc.Router.start ~socket ~dir ~count:shards ~shard_argv ~shard_config
          ~health_interval_ms ~health_timeout_ms ?forward_timeout_ms ~max_conns ~queue
          ~request_timeout_ms ~drain_timeout_ms ~shard_grace_ms ()
      with
      | Error d -> fail_diag d
      | Ok router ->
        let graceful = Sys.Signal_handle (fun _ -> Svc.Router.signal_stop router) in
        List.iter
          (fun s -> try Sys.set_signal s graceful with Invalid_argument _ | Sys_error _ -> ())
          [ Sys.sigterm; Sys.sigint ];
        Format.printf "kfused: router on %s, %d shards under %s (disk cache %s)@." socket
          shards dir cache_dir;
        if Svc.Router.await_ready router then Format.printf "kfused: fleet ready@."
        else Format.printf "kfused: fleet partially ready (see shard logs in %s)@." dir;
        Svc.Router.wait router;
        Format.printf "kfused: fleet shut down@.";
        0
  in
  Cmd.v
    (Cmd.info "shard-serve" ~doc ~man)
    Term.(
      const run $ socket_arg $ shard_dir_arg $ shards_arg $ cache_dir_arg $ capacity_arg
      $ max_conns_arg $ queue_arg $ request_timeout_arg $ forward_timeout_arg
      $ drain_timeout_arg $ shard_grace_arg $ health_interval_arg $ health_timeout_arg
      $ storm_threshold_arg $ storm_window_arg $ backoff_arg $ max_backoff_arg
      $ cooldown_arg $ ping_misses_arg $ sandbox_arg)

let query_cmd =
  let doc = "Send one request to a running kfused and print the reply." in
  let op_arg =
    Arg.(
      value
      & vflag `Fuse
          [
            (`Fuse, info [ "fuse" ] ~doc:"Request a fusion plan (the default).");
            ( `Exec,
              info [ "exec" ]
                ~doc:
                  "Plan, then compile and natively execute the fused pipeline on \
                   the server (the $(b,fuse_exec) op); inputs are synthesized \
                   from $(b,--seed).  Requires a C toolchain on the server." );
            (`Stats, info [ "stats" ] ~doc:"Fetch cache and per-request statistics as JSON.");
            ( `Metrics,
              info [ "metrics" ] ~doc:"Fetch the Prometheus-style text metrics dump." );
            (`Ping, info [ "ping" ] ~doc:"Check liveness.");
            (`Shutdown, info [ "shutdown" ] ~doc:"Ask the server to shut down.");
          ])
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Bypass the server's plan cache for this request.")
  in
  let timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Bound the connect and every read/write on the connection; an \
             elapsed timeout is a typed KF0804 error (and retryable).")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry up to N times when the server sheds the request (KF0803) \
             or it times out (KF0804), with exponential backoff and \
             deterministic jitter.  Only idempotent requests are retried — \
             $(b,--shutdown) never is.")
  in
  let retry_backoff_arg =
    Arg.(
      value & opt float 50.0
      & info [ "retry-backoff-ms" ] ~docv:"MS"
          ~doc:"First backoff step; doubles per retry (capped at 2s).")
  in
  let width_arg =
    Arg.(
      value & opt (some int) None
      & info [ "width" ] ~docv:"W"
          ~doc:
            "With $(b,--exec): override the pipeline extent (registry apps \
             only; pair with $(b,--height)).")
  in
  let height_arg =
    Arg.(
      value & opt (some int) None
      & info [ "height" ] ~docv:"H" ~doc:"With $(b,--exec): see $(b,--width).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"With $(b,--exec): seed for the synthesized inputs.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:"With $(b,--exec): timing samples per execution.")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "With $(b,--exec): also run the reference interpreter on the \
             server and report $(b,max_abs_diff).")
  in
  let pixels_arg =
    Arg.(
      value & flag
      & info [ "pixels" ]
          ~doc:
            "With $(b,--exec): inline each output's pixel rows in the reply \
             (small extents only; the reply must fit the 16 MiB frame limit).")
  in
  let run common socket op strategy optimize inline no_cache timeout_ms retries
      retry_backoff_ms exec_mode width height seed repeat verify pixels =
    let retry =
      { Svc.Client.default_retry with attempts = retries; backoff_ms = retry_backoff_ms }
    in
    let exec print req =
      match Svc.Client.call ~socket ?timeout_ms ~retry req with
      | Error d -> fail_diag d
      | Ok v ->
        print v;
        0
    in
    let print_json v = print_endline (Svc.Jsonx.to_string v) in
    match op with
    | `Ping -> exec (fun _ -> print_endline "pong") Svc.Protocol.Ping
    | `Shutdown ->
      exec (fun _ -> print_endline "shutdown requested") Svc.Protocol.Shutdown
    | `Stats -> exec print_json Svc.Protocol.Stats
    | `Metrics ->
      exec
        (fun v ->
          match Svc.Jsonx.mem_str "text" v with
          | Some text -> print_string text
          | None -> print_json v)
        Svc.Protocol.Metrics
    | (`Fuse | `Exec) as which -> (
      (* The request carries DSL source, not a path: the server need not
         share a filesystem view with the client. *)
      let source =
        match (common.app, common.file) with
        | None, Some path -> Result.map (fun s -> (None, Some s)) (read_file path)
        | Some app, None -> Ok (Some app, None)
        | Some _, Some _ -> Error (Diag.v Diag.Io_error "pass either --app or a FILE, not both")
        | None, None -> Error (Diag.v Diag.Io_error "pass --app NAME or a DSL FILE")
      in
      match source with
      | Error d -> fail_diag d
      | Ok (app, source) -> (
        let req =
          {
            Svc.Protocol.app;
            source;
            strategy;
            c_mshared = Some common.config.F.Config.c_mshared;
            gamma = Some common.config.F.Config.gamma;
            tg = Some common.config.F.Config.tg;
            optimize;
            inline;
            budget_ms = common.budget_ms;
            no_cache;
            strict = common.strict;
          }
        in
        match which with
        | `Fuse -> exec print_json (Svc.Protocol.Fuse req)
        | `Exec ->
          exec print_json
            (Svc.Protocol.Fuse_exec
               {
                 Svc.Protocol.fuse = req;
                 exec_mode;
                 width;
                 height;
                 seed;
                 repeat;
                 verify;
                 return_pixels = pixels;
               })))
  in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(
      const run $ common_term $ socket_arg $ op_arg $ strategy_arg $ optimize_arg
      $ inline_arg $ no_cache_arg $ timeout_arg $ retries_arg $ retry_backoff_arg
      $ exec_mode_arg $ width_arg $ height_arg $ seed_arg $ repeat_arg $ verify_arg
      $ pixels_arg)

(* ---- repl: lazy-pipeline editing, fusion (re)planned on flush ---- *)

(* The repl is the interactive face of Kfuse_lazy: every line goes
   through the shared Command grammar, so a session is replayable as a
   --script and — with --socket — forwardable byte-for-byte to a kfused
   lazy session (the identical strings become lazy_edit/lazy_flush
   requests).  Prompts and errors go to stderr; stdout carries only
   command results, so local and daemon transcripts stay diffable. *)

let repl_print_plan tag (pl : Lz.Replan.plan) =
  let block_label b =
    String.concat " "
      (List.map
         (fun i -> (Ir.Pipeline.kernel pl.Lz.Replan.pipeline i).Ir.Kernel.name)
         (Iset.elements b))
  in
  Format.printf "%s: %d kernels -> %d, objective %.6f@." tag
    (Ir.Pipeline.num_kernels pl.Lz.Replan.pipeline)
    (Ir.Pipeline.num_kernels pl.Lz.Replan.fused)
    pl.Lz.Replan.objective;
  Format.printf "partition:%s@."
    (String.concat ""
       (List.map (fun b -> Printf.sprintf " [%s]" (block_label b)) pl.Lz.Replan.partition));
  let s = pl.Lz.Replan.stats in
  Format.printf "replan: %d blocks reused, %d replanned; %d edges reused, %d rescored%s@."
    s.Lz.Replan.blocks_reused s.Lz.Replan.blocks_replanned s.Lz.Replan.edges_reused
    s.Lz.Replan.edges_rescored
    (if s.Lz.Replan.fell_back then "; fell back to scratch" else "");
  Format.printf "fingerprint %s@." pl.Lz.Replan.fingerprint

let repl_print_show lp =
  Format.printf "pipeline %s: %dx%dx%d, generation %d@." (Lz.Lazy_pipeline.name lp)
    (Lz.Lazy_pipeline.width lp) (Lz.Lazy_pipeline.height lp)
    (Lz.Lazy_pipeline.channels lp)
    (Lz.Lazy_pipeline.generation lp);
  Format.printf "inputs: %s@." (String.concat " " (Lz.Lazy_pipeline.inputs lp));
  (match Lz.Lazy_pipeline.params lp with
  | [] -> ()
  | ps ->
    Format.printf "params: %s@."
      (String.concat " " (List.map (fun (n, v) -> Printf.sprintf "%s=%g" n v) ps)));
  let ks = List.map (fun k -> k.Ir.Kernel.name) (Lz.Lazy_pipeline.kernels lp) in
  Format.printf "kernels (%d): %s@." (List.length ks) (String.concat " " ks)

let repl_cmd =
  let doc = "Edit a pipeline interactively; fusion is (re)planned on each flush." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Builds a lazy pipeline — seeded from $(b,--app)/$(i,FILE), or empty \
         with $(b,--width) and $(b,--height) — and applies edit commands from \
         stdin or $(b,--script).  Fusion runs only on $(b,flush), through the \
         incremental replanning session: edits confined to one region of the \
         DAG reuse the min-cut decisions of every untouched region, and the \
         resulting plan is bit-identical to planning from scratch \
         ($(b,flush scratch) is the differential reference).";
      `P
        "Commands (one per line, '#' starts a comment): $(b,add <name> = \
         <expr>), $(b,del <name>), $(b,retarget <kernel> <from> <to>), \
         $(b,param <name> <value>), $(b,input <name>), $(b,flush [scratch]), \
         $(b,plan), $(b,show), $(b,help), $(b,quit).";
      `P
        "With $(b,--socket), the same lines drive a lazy session inside a \
         running kfused (lazy_open/lazy_edit/lazy_flush on the wire) and \
         replies are printed as JSON.  In $(b,--script) mode the first \
         rejected command aborts with exit 1; interactively, errors are \
         reported and the session continues.";
    ]
  in
  let script_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:
            "Run commands from $(docv) instead of stdin (batch mode: the \
             first rejected command aborts with exit 1).")
  in
  let socket_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Drive a lazy session inside the kfused listening on $(docv) \
             instead of planning locally.")
  in
  let timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"With $(b,--socket): bound the connect and every read/write.")
  in
  let width_arg =
    Arg.(
      value & opt (some int) None
      & info [ "width" ] ~docv:"W"
          ~doc:
            "Extent of an empty builder (pair with $(b,--height)); with \
             $(b,--app), overrides the app's extent.")
  in
  let height_arg =
    Arg.(value & opt (some int) None & info [ "height" ] ~docv:"H" ~doc:"See $(b,--width).")
  in
  let channels_arg =
    Arg.(
      value & opt int 1
      & info [ "channels" ] ~docv:"C" ~doc:"Channels of an empty builder (default 1).")
  in
  let inputs_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "inputs" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated input images an empty builder starts with \
             (more can be declared with the $(b,input) command).")
  in
  let run common script socket timeout_ms width height channels inputs =
    let source_lines =
      match script with
      | None -> Ok None
      | Some path -> Result.map (fun s -> Some (String.split_on_char '\n' s)) (read_file path)
    in
    match source_lines with
    | Error d -> fail_diag d
    | Ok script_lines -> (
      let interactive = script_lines = None in
      let next_line =
        match script_lines with
        | Some lines ->
          let rest = ref lines in
          fun () ->
            (match !rest with
            | [] -> None
            | l :: tl ->
              rest := tl;
              Some l)
        | None ->
          fun () ->
            prerr_string "kfuse> ";
            flush stderr;
            (try Some (input_line stdin) with End_of_file -> None)
      in
      let tokens line =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      match socket with
      | None -> (
        (* Local mode: the builder and its planning session live here. *)
        let builder =
          match (common.app, common.file) with
          | None, None -> (
            match (width, height) with
            | Some w, Some h -> (
              try
                Ok (Lz.Lazy_pipeline.create ~channels ~inputs ~width:w ~height:h common.config)
              with Invalid_argument m -> Error (Diag.v Diag.Config_invalid m))
            | _ ->
              Error
                (Diag.v Diag.Io_error
                   "pass --app NAME, a DSL FILE, or --width and --height for an \
                    empty builder"))
          | app, file ->
            Result.map (Lz.Lazy_pipeline.of_pipeline common.config)
              (load_validated ~app ~file)
        in
        match builder with
        | Error d -> fail_diag d
        | Ok lp ->
          with_jobs common.jobs @@ fun pool ->
          (* fail fast under --script, report-and-continue interactively *)
          let on_error n d k =
            if interactive then begin
              Format.eprintf "kfusec: %a@." Diag.pp d;
              k ()
            end
            else begin
              Format.eprintf "kfusec: repl:%d: %a@." n Diag.pp d;
              1
            end
          in
          let rec loop n =
            match next_line () with
            | None -> 0
            | Some raw -> (
              let line = String.trim raw in
              if line = "" || line.[0] = '#' then loop (n + 1)
              else
                match Lz.Command.parse lp line with
                | Error d -> on_error n d (fun () -> loop (n + 1))
                | Ok Lz.Command.Quit -> 0
                | Ok Lz.Command.Help ->
                  print_endline Lz.Command.help;
                  loop (n + 1)
                | Ok Lz.Command.Show ->
                  repl_print_show lp;
                  loop (n + 1)
                | Ok Lz.Command.Plan ->
                  (match Lz.Lazy_pipeline.last lp with
                  | None -> print_endline "no plan yet (run: flush)"
                  | Some pl -> repl_print_plan "plan" pl);
                  loop (n + 1)
                | Ok (Lz.Command.Flush { scratch }) -> (
                  let planned =
                    if scratch then Lz.Lazy_pipeline.flush_scratch ~pool lp
                    else Lz.Lazy_pipeline.flush ~pool lp
                  in
                  match planned with
                  | Error d -> on_error n d (fun () -> loop (n + 1))
                  | Ok pl ->
                    repl_print_plan (if scratch then "flush scratch" else "flush") pl;
                    loop (n + 1))
                | Ok ((Lz.Command.Edit _ | Lz.Command.Add_input _) as c) -> (
                  match Lz.Command.apply lp c with
                  | Error d -> on_error n d (fun () -> loop (n + 1))
                  | Ok desc ->
                    Format.printf "applied: %s@." desc;
                    loop (n + 1)))
          in
          loop 1)
      | Some socket -> (
        (* Daemon mode: edit lines pass through verbatim as lazy_edit;
           only flush/plan/show/help/quit are interpreted client-side. *)
        let seed =
          match (common.app, common.file) with
          | Some _, Some _ -> Error (Diag.v Diag.Io_error "pass either --app or a FILE, not both")
          | None, Some path -> Result.map (fun s -> (None, Some s)) (read_file path)
          | (Some _ as app), None -> Ok (app, None)
          | None, None ->
            if width = None || height = None then
              Error
                (Diag.v Diag.Io_error
                   "pass --app NAME, a DSL FILE, or --width and --height for an \
                    empty builder")
            else Ok (None, None)
        in
        match seed with
        | Error d -> fail_diag d
        | Ok (app, source) -> (
          let openreq =
            {
              Svc.Protocol.app;
              source;
              width;
              height;
              channels = (if app = None && source = None then Some channels else None);
              inputs;
              c_mshared = Some common.config.F.Config.c_mshared;
              gamma = Some common.config.F.Config.gamma;
              tg = Some common.config.F.Config.tg;
            }
          in
          let print_json v = print_endline (Svc.Jsonx.to_string v) in
          let session =
            Svc.Client.with_connection ~socket ?timeout_ms @@ fun c ->
            match Svc.Client.request c (Svc.Protocol.Lazy_open openreq) with
            | Error _ as e -> e
            | Ok opened -> (
              print_json opened;
              match Svc.Jsonx.mem_str "id" opened with
              | None -> Error (Diag.v Diag.Protocol_error "lazy_open reply carries no \"id\"")
              | Some id ->
                let last_state = ref opened and last_plan = ref None in
                let close rc =
                  match Svc.Client.request c (Svc.Protocol.Lazy_close id) with
                  | Ok v ->
                    print_json v;
                    Ok rc
                  | Error d ->
                    Format.eprintf "kfusec: %a@." Diag.pp d;
                    Ok (if rc = 0 then 1 else rc)
                in
                let rec loop n =
                  match next_line () with
                  | None -> close 0
                  | Some raw -> (
                    let line = String.trim raw in
                    if line = "" || line.[0] = '#' then loop (n + 1)
                    else
                      let fail d =
                        if interactive then begin
                          Format.eprintf "kfusec: %a@." Diag.pp d;
                          loop (n + 1)
                        end
                        else begin
                          Format.eprintf "kfusec: repl:%d: %a@." n Diag.pp d;
                          close 1
                        end
                      in
                      match tokens line with
                      | [ ("quit" | "exit") ] -> close 0
                      | [ "help" ] ->
                        print_endline Lz.Command.help;
                        loop (n + 1)
                      | [ "show" ] ->
                        print_json !last_state;
                        loop (n + 1)
                      | [ "plan" ] ->
                        (match !last_plan with
                        | Some v -> print_json v
                        | None -> print_endline "no plan yet (run: flush)");
                        loop (n + 1)
                      | ([ "flush" ] | [ "flush"; "scratch" ]) as t -> (
                        let scratch = t = [ "flush"; "scratch" ] in
                        match
                          Svc.Client.request c
                            (Svc.Protocol.Lazy_flush { Svc.Protocol.id; scratch })
                        with
                        | Error d -> fail d
                        | Ok v ->
                          last_plan := Some v;
                          print_json v;
                          loop (n + 1))
                      | _ -> (
                        match
                          Svc.Client.request c
                            (Svc.Protocol.Lazy_edit { Svc.Protocol.id; command = line })
                        with
                        | Error d -> fail d
                        | Ok v ->
                          last_state := v;
                          print_json v;
                          loop (n + 1)))
                in
                loop 1)
          in
          match session with
          | Error d -> fail_diag d
          | Ok rc -> rc)))
  in
  Cmd.v
    (Cmd.info "repl" ~doc ~man)
    Term.(
      const run $ common_term $ script_arg $ socket_opt_arg $ timeout_arg $ width_arg
      $ height_arg $ channels_arg $ inputs_arg)

(* ---- stream: sustained frame-rate streaming against kfused ---- *)

(* One synthetic stream's worth of client work: open, push [frames]
   paced frames, close.  Per-frame latency (including any shed-retry
   backoff — the client-perceived number) goes through [record]. *)
type stream_outcome = {
  so_ok : int;
  so_retried : int;  (* frames that needed at least one shed retry *)
  so_failed : int;
  so_wall_s : float;
  so_error : Diag.t option;  (* first hard failure *)
}

let drive_stream ~socket ~timeout_ms ~retries ~backoff_ms ~fps ~frames ~verify ~record
    (open_req : Svc.Protocol.stream_open_request) =
  Svc.Client.with_connection ~socket ?timeout_ms @@ fun c ->
  match Svc.Client.stream_open c open_req with
  | Error _ as e -> e
  | Ok reply -> (
    match Svc.Jsonx.mem_str "id" reply with
    | None -> Error (Diag.v Diag.Protocol_error "stream_open reply lacks \"id\"")
    | Some id ->
      let push_req = { Svc.Protocol.id; verify; return_pixels = false } in
      let rng = Kfuse_util.Rng.create open_req.Svc.Protocol.seed in
      let ok = ref 0 and retried = ref 0 and failed = ref 0 in
      let first_err = ref None in
      let t_start = Unix.gettimeofday () in
      for f = 0 to frames - 1 do
        (* Pace against the stream's epoch, not the previous frame, so a
           slow frame is followed by catch-up rather than drift. *)
        if fps > 0.0 then begin
          let due = t_start +. (float_of_int f /. fps) in
          let now = Unix.gettimeofday () in
          if due > now then Thread.delay (due -. now)
        end;
        let t0 = Unix.gettimeofday () in
        (* Retry only explicit sheds (KF0803/KF0805): the server rejects
           those before touching temporal state, so the frame can be
           re-pushed verbatim.  A KF0804 timeout may have been
           processed; retrying could double-advance the stream. *)
        let rec push attempt =
          match Svc.Client.stream_push c push_req with
          | Ok _ ->
            if attempt > 0 then incr retried;
            incr ok;
            record ((Unix.gettimeofday () -. t0) *. 1000.)
          | Error d -> (
            match d.Diag.code with
            | (Diag.Overloaded | Diag.Stream_backpressure) when attempt < retries ->
              let step =
                Float.min (backoff_ms *. (2.0 ** float_of_int attempt)) 2_000.0
              in
              Thread.delay (step *. (0.5 +. Kfuse_util.Rng.float rng 0.5) /. 1000.0);
              push (attempt + 1)
            | _ ->
              incr failed;
              if !first_err = None then first_err := Some d)
        in
        push 0
      done;
      let wall = Unix.gettimeofday () -. t_start in
      (match Svc.Client.stream_close c id with
      | Ok _ -> ()
      | Error d -> if !first_err = None then first_err := Some d);
      Ok
        {
          so_ok = !ok;
          so_retried = !retried;
          so_failed = !failed;
          so_wall_s = wall;
          so_error = !first_err;
        })

type stream_report = {
  sr_streams : int;
  sr_ok : int;
  sr_retried : int;
  sr_failed : int;
  sr_wall_s : float;  (* slowest stream *)
  sr_quantiles : Kfuse_util.Stats.quantiles option;
  sr_error : Diag.t option;
}

let drive_streams ~socket ~timeout_ms ~retries ~backoff_ms ~fps ~frames ~streams ~verify
    open_req =
  let reservoir = Kfuse_util.Stats.reservoir ~seed:0 8192 in
  let res_lock = Mutex.create () in
  let record ms =
    Mutex.lock res_lock;
    Kfuse_util.Stats.add reservoir ms;
    Mutex.unlock res_lock
  in
  let results = Array.make streams None in
  let threads =
    Array.init streams (fun i ->
        Thread.create
          (fun i ->
            let r =
              try
                drive_stream ~socket ~timeout_ms ~retries ~backoff_ms ~fps ~frames
                  ~verify ~record (open_req i)
              with e -> Error (Diag.of_exn e)
            in
            results.(i) <- Some r)
          i)
  in
  Array.iter Thread.join threads;
  Array.fold_left
    (fun acc r ->
      match r with
      | None | Some (Error _) ->
        let d =
          match r with
          | Some (Error d) -> Some d
          | _ -> Some (Diag.v Diag.Service_error "stream thread vanished")
        in
        {
          acc with
          sr_failed = acc.sr_failed + frames;
          sr_error = (match acc.sr_error with Some _ as e -> e | None -> d);
        }
      | Some (Ok o) ->
        {
          acc with
          sr_ok = acc.sr_ok + o.so_ok;
          sr_retried = acc.sr_retried + o.so_retried;
          sr_failed = acc.sr_failed + o.so_failed;
          sr_wall_s = Float.max acc.sr_wall_s o.so_wall_s;
          sr_error =
            (match acc.sr_error with Some _ as e -> e | None -> o.so_error);
        })
    {
      sr_streams = streams;
      sr_ok = 0;
      sr_retried = 0;
      sr_failed = 0;
      sr_wall_s = 0.0;
      sr_quantiles = Kfuse_util.Stats.quantiles reservoir;
      sr_error = None;
    }
    results

let pp_stream_report ppf (r : stream_report) ~frames ~fps =
  let aggregate = if r.sr_wall_s > 0.0 then float_of_int r.sr_ok /. r.sr_wall_s else 0.0 in
  Format.fprintf ppf "pushed %d/%d frames (retried %d, failed %d) in %.2f s@,"
    r.sr_ok (r.sr_streams * frames) r.sr_retried r.sr_failed r.sr_wall_s;
  (match r.sr_quantiles with
  | None -> ()
  | Some q ->
    Format.fprintf ppf
      "frame latency ms: p50 %.2f  p90 %.2f  p95 %.2f  p99 %.2f  max %.2f (n=%d)@,"
      q.Kfuse_util.Stats.p50 q.Kfuse_util.Stats.p90 q.Kfuse_util.Stats.p95
      q.Kfuse_util.Stats.p99 q.Kfuse_util.Stats.q_max q.Kfuse_util.Stats.samples);
  Format.fprintf ppf "sustained: %.1f fps/stream, %.1f fps aggregate%s"
    (aggregate /. float_of_int (max 1 r.sr_streams))
    aggregate
    (if fps > 0.0 then Printf.sprintf " (target %.1f fps/stream)" fps else "")

let stream_fuse_request (common : common) ~strategy ~app ~source =
  {
    Svc.Protocol.app;
    source;
    strategy;
    c_mshared = Some common.config.F.Config.c_mshared;
    gamma = Some common.config.F.Config.gamma;
    tg = Some common.config.F.Config.tg;
    optimize = false;
    inline = false;
    budget_ms = common.budget_ms;
    no_cache = false;
    strict = common.strict;
  }

let stream_cmd =
  let doc = "Drive concurrent synthetic video streams against a running kfused." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Opens $(b,--streams) sessions on the server ($(b,stream_open): plan \
         once, compile and pin the native artifact once), then pushes \
         $(b,--frames) synthetic frames per stream paced at $(b,--fps) \
         ($(b,stream_push): one frame against the session's temporal window — \
         $(b,prev)/$(b,prevN) inputs read past frames).  Sheds (KF0803/KF0805) \
         are retried with backoff; per-frame latency quantiles (including \
         retry time) and the sustained frame rate are reported.";
      `P
        "Temporal apps: $(b,motion) (frame delta, Sobel, threshold) and \
         $(b,tharris) (temporally smoothed Harris).  Non-temporal pipelines \
         stream too, with an empty window.";
    ]
  in
  let streams_arg =
    Arg.(
      value & opt int 4
      & info [ "streams" ] ~docv:"N" ~doc:"Concurrent streams (each on its own connection).")
  in
  let frames_arg =
    Arg.(value & opt int 120 & info [ "frames" ] ~docv:"N" ~doc:"Frames per stream.")
  in
  let fps_arg =
    Arg.(
      value & opt float 30.0
      & info [ "fps" ] ~docv:"FPS" ~doc:"Target frame rate per stream; 0 pushes unpaced.")
  in
  let width_arg =
    Arg.(
      value & opt (some int) None
      & info [ "width" ] ~docv:"W"
          ~doc:"Override the pipeline extent (registry apps only; pair with $(b,--height)).")
  in
  let height_arg =
    Arg.(
      value & opt (some int) None
      & info [ "height" ] ~docv:"H" ~doc:"See $(b,--width).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Base seed; stream $(i,i) synthesizes its frames from SEED+$(i,i).")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Ask the server to also run the reference interpreter on every \
             frame and report the worst $(b,max_abs_diff).")
  in
  let timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Bound the connect and every read/write on each connection.")
  in
  let retries_arg =
    Arg.(
      value & opt int 8
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a shed frame (KF0803/KF0805) up to N times with exponential \
             backoff; sheds happen before the stream advances, so the retry \
             is verbatim-safe.  Timeouts are never retried.")
  in
  let retry_backoff_arg =
    Arg.(
      value & opt float 10.0
      & info [ "retry-backoff-ms" ] ~docv:"MS"
          ~doc:"First backoff step; doubles per retry (capped at 2s).")
  in
  let run common socket exec_mode streams frames fps width height seed verify timeout_ms
      retries retry_backoff_ms strategy =
    if streams < 1 || frames < 1 then begin
      Format.eprintf "kfusec: --streams and --frames must be >= 1@.";
      1
    end
    else begin
      let source =
        match (common.app, common.file) with
        | None, Some path -> Result.map (fun s -> (None, Some s)) (read_file path)
        | Some app, None -> Ok (Some app, None)
        | Some _, Some _ ->
          Error (Diag.v Diag.Io_error "pass either --app or a FILE, not both")
        | None, None -> Error (Diag.v Diag.Io_error "pass --app NAME or a DSL FILE")
      in
      match source with
      | Error d -> fail_diag d
      | Ok (app, source) ->
        let fuse = stream_fuse_request common ~strategy ~app ~source in
        let open_req i =
          { Svc.Protocol.fuse; exec_mode; width; height; seed = seed + i }
        in
        let r =
          drive_streams ~socket ~timeout_ms ~retries ~backoff_ms:retry_backoff_ms ~fps
            ~frames ~streams ~verify open_req
        in
        Format.printf "@[<v>stream: %d x %d frames, %s@,%a@]@." streams frames
          (match app with
          | Some a -> "app " ^ a
          | None -> "DSL pipeline")
          (fun ppf r -> pp_stream_report ppf r ~frames ~fps)
          r;
        (match r.sr_error with
        | Some d ->
          pp_diag d;
          1
        | None -> if r.sr_failed > 0 then 1 else 0)
    end
  in
  Cmd.v (Cmd.info "stream" ~doc ~man)
    Term.(
      const run $ common_term $ socket_arg $ exec_mode_arg $ streams_arg $ frames_arg
      $ fps_arg $ width_arg $ height_arg $ seed_arg $ verify_arg $ timeout_arg
      $ retries_arg $ retry_backoff_arg $ strategy_arg)

let bench_stream_cmd =
  let doc = "Benchmark sustained streaming throughput, fused vs. unfused." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Starts an in-process kfused on a private socket, then for each \
         stream count in $(b,--stream-counts) and each fusion variant \
         (min-cut and unfused baseline) drives that many concurrent \
         synthetic streams of $(b,--frames) frames at $(b,--fps), reporting \
         the sustained frame rate and per-frame latency quantiles.  Results \
         are written as a $(b,kfuse-bench-stream/v1) JSON document.";
      `P
        "The server runs with the $(b,dlopen-trusted) sandbox policy: frames \
         execute in-process on the pinned artifact, which is the \
         steady-state streaming configuration being measured.";
    ]
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_stream.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"JSON output path ($(b,-) for stdout).")
  in
  let counts_arg =
    Arg.(
      value
      & opt (list int) [ 1; 4; 16 ]
      & info [ "stream-counts" ] ~docv:"N,..." ~doc:"Stream counts to sweep.")
  in
  let frames_arg =
    Arg.(value & opt int 60 & info [ "frames" ] ~docv:"N" ~doc:"Frames per stream.")
  in
  let fps_arg =
    Arg.(
      value & opt float 30.0
      & info [ "fps" ] ~docv:"FPS" ~doc:"Target frame rate per stream; 0 pushes unpaced.")
  in
  let size_arg =
    Arg.(
      value & opt int 512
      & info [ "size" ] ~docv:"PX" ~doc:"Square frame extent (default 512).")
  in
  let app_arg =
    Arg.(
      value & opt string "motion"
      & info [ "bench-app" ] ~docv:"NAME" ~doc:"Registry application to stream.")
  in
  let run common out counts frames fps size app =
    if List.exists (fun n -> n < 1) counts || counts = [] then begin
      Format.eprintf "kfusec: --stream-counts must be a nonempty list of >= 1@.";
      1
    end
    else
      with_jobs common.jobs @@ fun pool ->
      let socket =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "kfuse-bench-stream-%d.sock" (Unix.getpid ()))
      in
      let cache = Cache.Plan_cache.create ~capacity:64 () in
      let max_streams = List.fold_left max 1 counts in
      match
        Svc.Server.start ~socket ~cache ~pool ~max_conns:(max_streams + 2)
          ~exec_sandbox:Exec.Supervisor.Dlopen_trusted ~max_streams ()
      with
      | Error d -> fail_diag d
      | Ok server ->
        let finally () =
          Svc.Server.stop server;
          try Sys.remove socket with Sys_error _ -> ()
        in
        Fun.protect ~finally @@ fun () ->
        let variants = [ ("mincut", F.Driver.Mincut); ("baseline", F.Driver.Baseline) ] in
        let failures = ref 0 in
        let configs =
          List.concat_map
            (fun streams ->
              List.map
                (fun (vname, strategy) ->
                  let fuse =
                    stream_fuse_request common ~strategy ~app:(Some app) ~source:None
                  in
                  let open_req i =
                    {
                      Svc.Protocol.fuse;
                      exec_mode = None;
                      width = Some size;
                      height = Some size;
                      seed = 42 + i;
                    }
                  in
                  let r =
                    drive_streams ~socket ~timeout_ms:(Some 30_000.0) ~retries:8
                      ~backoff_ms:10.0 ~fps ~frames ~streams ~verify:false open_req
                  in
                  (match r.sr_error with
                  | Some d ->
                    incr failures;
                    pp_diag d
                  | None -> if r.sr_failed > 0 then incr failures);
                  let aggregate =
                    if r.sr_wall_s > 0.0 then float_of_int r.sr_ok /. r.sr_wall_s
                    else 0.0
                  in
                  Format.printf "@[<v>%s, %d streams:@,  %a@]@." vname streams
                    (fun ppf r -> pp_stream_report ppf r ~frames ~fps)
                    r;
                  let latency =
                    match r.sr_quantiles with
                    | None -> Svc.Jsonx.Null
                    | Some q ->
                      Svc.Jsonx.Obj
                        [
                          ("samples", Svc.Jsonx.Num (float_of_int q.Kfuse_util.Stats.samples));
                          ("p50_ms", Svc.Jsonx.Num q.Kfuse_util.Stats.p50);
                          ("p90_ms", Svc.Jsonx.Num q.Kfuse_util.Stats.p90);
                          ("p95_ms", Svc.Jsonx.Num q.Kfuse_util.Stats.p95);
                          ("p99_ms", Svc.Jsonx.Num q.Kfuse_util.Stats.p99);
                          ("max_ms", Svc.Jsonx.Num q.Kfuse_util.Stats.q_max);
                          ("mean_ms", Svc.Jsonx.Num q.Kfuse_util.Stats.q_mean);
                        ]
                  in
                  Svc.Jsonx.Obj
                    [
                      ("streams", Svc.Jsonx.Num (float_of_int streams));
                      ("variant", Svc.Jsonx.Str vname);
                      ("frames_per_stream", Svc.Jsonx.Num (float_of_int frames));
                      ("frames_pushed", Svc.Jsonx.Num (float_of_int r.sr_ok));
                      ("frames_retried", Svc.Jsonx.Num (float_of_int r.sr_retried));
                      ("frames_failed", Svc.Jsonx.Num (float_of_int r.sr_failed));
                      ("wall_s", Svc.Jsonx.Num r.sr_wall_s);
                      ("aggregate_fps", Svc.Jsonx.Num aggregate);
                      ( "fps_per_stream",
                        Svc.Jsonx.Num (aggregate /. float_of_int (max 1 streams)) );
                      ("latency", latency);
                    ])
                variants)
            counts
        in
        let json =
          Svc.Jsonx.Obj
            [
              ("schema", Svc.Jsonx.Str "kfuse-bench-stream/v1");
              ("app", Svc.Jsonx.Str app);
              ("width", Svc.Jsonx.Num (float_of_int size));
              ("height", Svc.Jsonx.Num (float_of_int size));
              ("fps_target", Svc.Jsonx.Num fps);
              ("configs", Svc.Jsonx.Arr configs);
            ]
        in
        let text = Svc.Jsonx.to_string json in
        let write_failed =
          if out = "-" then begin
            print_string text;
            None
          end
          else
            match
              let oc = open_out out in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () -> output_string oc text)
            with
            | () ->
              Format.printf "wrote %s@." out;
              None
            | exception Sys_error msg -> Some (Diag.v ~file:out Diag.Io_error msg)
        in
        match write_failed with
        | Some d -> fail_diag d
        | None -> if !failures > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "bench-stream" ~doc ~man)
    Term.(
      const run $ common_term $ out_arg $ counts_arg $ frames_arg $ fps_arg $ size_arg
      $ app_arg)

(* ---- fuzz: the differential fuzzing campaign ---- *)

let fuzz_cmd =
  let doc = "Fuzz the fusion engine with generated pipelines and differential oracles." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates random well-formed pipelines (seeded, fully reproducible) \
         and runs each through a bank of differential oracles: every \
         strategy's partition must be legal, the min-cut objective must not \
         beat the exhaustive optimum on small DAGs, fused evaluation must be \
         pixel-exact against the unfused pipeline, parallel and cached runs \
         must be bit-identical to fresh serial ones, and structural \
         fingerprints must be invariant under renaming, input permutation and \
         duplicate-then-CSE.  With $(b,--native), each fused plan is also \
         compiled with the host C toolchain and executed natively, and must \
         agree bitwise with the interpreter.";
      `P
        "Failures are shrunk to minimal reproducers and persisted to \
         $(b,--corpus); corpus entries are replayed before new generation, so \
         a found bug stays visible until fixed.  Exit status is 1 when \
         anything failed, 0 on a clean campaign.";
    ]
  in
  let cases_arg =
    Arg.(
      value
      & opt int Fz.Runner.default_options.Fz.Runner.cases
      & info [ "cases" ] ~docv:"N" ~doc:"Number of generated pipelines.")
  in
  let seed_arg =
    Arg.(
      value
      & opt int Fz.Runner.default_options.Fz.Runner.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Campaign seed; case $(i,i) is a pure function of (SEED, i).")
  in
  let shrink_arg =
    Arg.(
      value & opt bool true
      & info [ "shrink" ] ~docv:"BOOL" ~doc:"Shrink failures to minimal reproducers.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Corpus directory: replay all entries before generating, persist \
             new failures as DSL files.")
  in
  let max_kernels_arg =
    Arg.(
      value
      & opt int Fz.Runner.default_options.Fz.Runner.max_kernels
      & info [ "max-kernels" ] ~docv:"K" ~doc:"Largest generated DAG (>= 2).")
  in
  let strict_optimal_arg =
    Arg.(
      value & flag
      & info [ "strict-optimal" ]
          ~doc:
            "Treat a heuristic optimality gap (min-cut beta below the \
             exhaustive optimum) as a failure, not a statistic.")
  in
  let max_failures_arg =
    Arg.(
      value
      & opt int Fz.Runner.default_options.Fz.Runner.max_failures
      & info [ "max-failures" ] ~docv:"N" ~doc:"Stop the campaign after N failures.")
  in
  let native_arg =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:
            "Add the interpreter-vs-native oracle: compile each fused plan with \
             the host C toolchain and demand bitwise agreement with the \
             interpreter.  Much slower (one C compile per case); skipped \
             silently when no toolchain is found.")
  in
  let oracle_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "oracle" ] ~docv:"NAMES"
          ~doc:
            "Run exactly these oracles (comma-separated), in order, instead \
             of the default bank — e.g. $(b,--oracle incremental-replan) for \
             the lazy-frontend differential smoke.  Overrides $(b,--native).")
  in
  let run cases seed shrink corpus max_kernels strict_optimal max_failures native oracles
      jobs =
    let oracles =
      Option.map
        (List.map (fun s ->
             match Fz.Oracle.name_of_string s with
             | Some n -> n
             | None ->
               Format.eprintf "kfusec fuzz: unknown oracle '%s'@." s;
               exit 2))
        oracles
    in
    if cases < 0 || max_kernels < 2 || max_failures < 1 then begin
      Format.eprintf "kfusec fuzz: invalid --cases/--max-kernels/--max-failures@.";
      2
    end
    else begin
      let options =
        {
          Fz.Runner.cases;
          seed;
          shrink;
          corpus;
          max_kernels;
          strict_optimal;
          jobs;
          max_failures;
          cache_dir = None;
          native;
          oracles;
        }
      in
      let summary = Fz.Runner.run ~log:(Format.eprintf "%s@.") options in
      Format.printf "%a" Fz.Runner.pp_summary summary;
      if Fz.Runner.failed summary then 1 else 0
    end
  in
  Cmd.v (Cmd.info "fuzz" ~doc ~man)
    Term.(
      const run $ cases_arg $ seed_arg $ shrink_arg $ corpus_arg $ max_kernels_arg
      $ strict_optimal_arg $ max_failures_arg $ native_arg $ oracle_arg $ jobs_arg)

(* ---- bench-native: fused vs unfused wall-clock on the paper apps ---- *)

let bench_native_cmd =
  let doc = "Benchmark fused vs. unfused native execution on the paper applications." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "For each application the pipeline is fused twice — baseline (no \
         fusion) and min-cut — compiled to C + OpenMP, and executed on \
         identical deterministic random inputs.  The fastest of $(b,--runs) \
         executions per variant is reported, both as a summary table and as \
         a $(b,kfuse-bench-native/v1) JSON document (see EXPERIMENTS.md).  \
         Unless $(b,--no-verify) is given, both variants are also checked \
         against the reference interpreter.";
    ]
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_native.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"JSON output path ($(b,-) for stdout).")
  in
  let runs_arg =
    Arg.(
      value & opt int 5
      & info [ "runs" ] ~docv:"N" ~doc:"Executions per variant; the fastest is reported.")
  in
  let width_arg =
    Arg.(
      value & opt (some int) None
      & info [ "width" ] ~docv:"W"
          ~doc:"Override the iteration-space width (default: the paper's sizes).")
  in
  let height_arg =
    Arg.(
      value & opt (some int) None
      & info [ "height" ] ~docv:"H" ~doc:"Override the iteration-space height.")
  in
  let apps_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "apps" ] ~docv:"NAMES"
          ~doc:"Comma-separated subset of applications (default: all six).")
  in
  let no_verify_arg =
    Arg.(
      value & flag
      & info [ "no-verify" ] ~doc:"Skip the interpreter cross-check (and its timing).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit nonzero unless every interpreter-vs-native difference is \
             within $(b,--tol).  Implies verification.")
  in
  let tol_arg =
    Arg.(
      value & opt float 1e-5
      & info [ "tol" ] ~docv:"EPS" ~doc:"Tolerance for $(b,--check) (default 1e-5).")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Compiled-artifact cache directory (default: the plan cache's \
                $(b,native) subdirectory).")
  in
  let snapshots_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "snapshots" ] ~docv:"FILES"
          ~doc:
            "With $(b,--check): comma-separated benchmark snapshot files that \
             must exist (the committed $(b,BENCH_*.json) documents CI \
             archives next to this run's output).  A missing one fails the \
             gate before any benchmark runs, so a snapshot silently dropped \
             from the tree cannot pass.")
  in
  let run out runs width height apps exec_mode no_verify check tol cache_dir snapshots =
    let verify = (not no_verify) || check in
    (* The snapshot gate runs first: it is a presence check on committed
       artifacts, and there is no point benchmarking for minutes only to
       fail on it afterwards. *)
    let missing =
      if check then List.filter (fun f -> not (Sys.file_exists f)) snapshots else []
    in
    if missing <> [] then begin
      List.iter
        (Format.eprintf "kfusec: bench-native --check: snapshot %s is absent@.")
        missing;
      1
    end
    else
    match
      Exec.Bench_native.run ?mode:exec_mode ?cache_dir ~runs ?width ?height ?apps ~verify
        ()
    with
    | Error d -> fail_diag d
    | Ok bench -> (
      Format.printf "@[<v>%a@]@." Exec.Bench_native.pp_summary bench;
      let json = Exec.Bench_native.to_json bench in
      let write_failed =
        if out = "-" then begin
          print_string json;
          None
        end
        else
          match
            let oc = open_out out in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc json)
          with
          | () ->
            Format.printf "wrote %s@." out;
            None
          | exception Sys_error msg -> Some (Diag.v ~file:out Diag.Io_error msg)
      in
      match write_failed with
      | Some d -> fail_diag d
      | None ->
        if not check then 0
        else begin
          match Exec.Bench_native.max_diff bench with
          | Some worst when worst <= tol -> 0
          | Some worst ->
            Format.eprintf
              "kfusec: bench-native --check: max-abs-diff %g exceeds tolerance %g@."
              worst tol;
            1
          | None ->
            Format.eprintf "kfusec: bench-native --check: nothing was verified@.";
            1
        end)
  in
  Cmd.v
    (Cmd.info "bench-native" ~doc ~man)
    Term.(
      const run $ out_arg $ runs_arg $ width_arg $ height_arg $ apps_arg $ exec_mode_arg
      $ no_verify_arg $ check_arg $ tol_arg $ cache_dir_arg $ snapshots_arg)

let main =
  let doc = "min-cut kernel fusion for image-processing pipelines (CGO 2019 reproduction)" in
  Cmd.group
    (Cmd.info "kfusec" ~version:"1.0.0" ~doc)
    [
      list_cmd; fuse_cmd; emit_cmd; estimate_cmd; run_cmd; explain_cmd; dot_cmd;
      unparse_cmd; check_cmd; dsl_check_cmd; serve_cmd; shard_serve_cmd; query_cmd;
      repl_cmd; stream_cmd; bench_stream_cmd; fuzz_cmd; bench_native_cmd;
    ]

let () =
  (* End-to-end fault injection: KFUSE_FAULTS="cut.stoer_wagner@1" makes
     the named points throw deterministically, so CI can prove the
     binary degrades instead of dying. *)
  (match Kfuse_util.Faults.arm_from_env () with
  | Ok () -> ()
  | Error msg ->
    Format.eprintf "kfusec: malformed %s spec: %s@." Kfuse_util.Faults.env_var msg;
    exit 2);
  exit (Cmd.eval' main)
