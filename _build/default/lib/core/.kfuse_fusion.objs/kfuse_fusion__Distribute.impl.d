lib/core/distribute.ml: Array Float Kfuse_image Kfuse_ir List Option Printf String
