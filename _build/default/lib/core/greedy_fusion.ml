module Iset = Kfuse_util.Iset
module Partition = Kfuse_graph.Partition
module Pipeline = Kfuse_ir.Pipeline

let partition config (p : Pipeline.t) =
  let g = Pipeline.dag p in
  let edges = Benefit.all_edges config p in
  let by_weight =
    List.stable_sort
      (fun (a : Benefit.edge_report) (b : Benefit.edge_report) ->
        Float.compare b.weight a.weight)
      edges
  in
  let legal = Mincut_fusion.block_legal config p edges in
  let rec fixpoint blocks =
    let merge =
      List.find_map
        (fun (r : Benefit.edge_report) ->
          let bu = Partition.block_of blocks r.src
          and bv = Partition.block_of blocks r.dst in
          if Iset.equal bu bv then None
          else begin
            let merged = Iset.union bu bv in
            if legal merged then Some (bu, bv) else None
          end)
        by_weight
    in
    match merge with
    | None -> blocks
    | Some (bu, bv) ->
      let rest =
        List.filter (fun b -> not (Iset.equal b bu || Iset.equal b bv)) blocks
      in
      fixpoint (Partition.normalize (Iset.union bu bv :: rest))
  in
  fixpoint (Partition.singletons g)
