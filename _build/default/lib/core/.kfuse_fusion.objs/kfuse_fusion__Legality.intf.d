lib/core/legality.mli: Config Format Kfuse_ir Kfuse_util
