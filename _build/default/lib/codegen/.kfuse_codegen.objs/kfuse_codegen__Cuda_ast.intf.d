lib/codegen/cuda_ast.mli:
