(** Native compile-and-execute backend: fused plans that return pixels.

    Takes a pipeline (typically the [fused] result of
    {!Kfuse_fusion.Driver.run}), emits the C + OpenMP source via
    {!Kfuse_codegen.Lower_cpu}, compiles it with the host toolchain
    ({!Toolchain}), and runs it on concrete {!Kfuse_image.Image.t}
    inputs — real pixels out, directly comparable against the
    {!Kfuse_ir.Eval} interpreter.

    Two execution modes share one compile cache:

    - {!Dlopen}: build a shared object, load it in-process through a
      small C stub against the fixed entry point
      [void kfuse_entry(const double** ins, double** outs, const double* params)]
      (ABI v2, appended to the generated source).  Cheapest per call.
    - {!Subprocess}: build a standalone executable whose [main] reads
      packed native-endian float64 inputs+parameters from a file and
      writes the outputs to another; run it as a child process.  Slower
      (process spawn + file I/O per run) but survives environments where
      loading untrusted-at-build-time objects into the host process is
      unwanted.

    Artifacts are content-addressed in a cache directory: the key folds
    the pipeline's exact fingerprint ({!Kfuse_cache.Fingerprint.exact}),
    the mode, the tiling, the toolchain and the ABI version, so a cache
    hit skips the compiler entirely.  The generated source is kept next
    to each artifact for debugging.

    Both the compiler invocation and every {!Subprocess} execution are
    supervised fork/exec children ({!Supervisor}) — no shell anywhere —
    so they can be killed on a deadline and, when [limits] are given,
    sandboxed with rlimits.

    Failures are typed: no toolchain is [KF0902]
    ({!Kfuse_util.Diag.Toolchain_missing}), a compiler rejection is
    [KF0903] ({!Kfuse_util.Diag.Compile_failed}, carrying the
    compiler's stderr), and load/run failures are [KF0904]
    ({!Kfuse_util.Diag.Exec_failed}); a supervised execution that the
    watchdog kills, that dies on a signal, or that hits an rlimit is
    [KF0905]/[KF0906]/[KF0907] (see {!Supervisor}).  Malformed {e calls}
    — inputs that do not bind exactly the pipeline's input names at the
    pipeline's extents, unknown parameter overrides — raise
    [Invalid_argument], mirroring {!Kfuse_ir.Eval.run}. *)

module Diag := Kfuse_util.Diag
module Deadline := Kfuse_util.Deadline
module Image := Kfuse_image.Image
module Pipeline := Kfuse_ir.Pipeline

type mode = Dlopen | Subprocess

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

(** How and what a {!run} executed. *)
type run_result = {
  outputs : (string * Image.t) list;
      (** sink images sorted by name — the same shape
          {!Kfuse_ir.Eval.run_outputs} returns; reduction outputs are
          1x1 images *)
  mode_used : mode;
  artifact : string;  (** path of the compiled object/executable *)
  cached : bool;  (** the artifact came from the compile cache *)
  compile_ms : float;  (** wall-clock spent in the C compiler; 0 on a hit *)
  exec_ms : float;  (** fastest execution sample *)
  samples_ms : float list;  (** every execution sample, in run order *)
  warnings : Diag.t list;
      (** e.g. the [KF0904] that made {!run} fall back from {!Dlopen}
          to {!Subprocess} *)
}

(** [source ?tile ~mode p] is the complete C translation unit compiled
    for [p] in [mode]: the {!Kfuse_codegen.Lower_cpu.emit_pipeline}
    output plus the ABI-v2 [kfuse_entry] wrapper ({!Dlopen}) or the
    file-marshalling [main] ({!Subprocess}). *)
val source : ?tile:int * int -> mode:mode -> Pipeline.t -> string

(** [compile ?cache_dir ?tile ~mode p] ensures a compiled artifact for
    [p] exists and returns [(path, compile_ms, cached)].  [cache_dir]
    defaults to a [native] directory under
    {!Kfuse_cache.Plan_cache.default_dir}. *)
val compile :
  ?cache_dir:string ->
  ?tile:int * int ->
  mode:mode ->
  Pipeline.t ->
  (string * float * bool, Diag.t) result

(** [run ?mode ?tile ?cache_dir ?params ?repeat ?deadline ?limits p
    inputs] compiles (or reuses) the artifact and executes it on
    [inputs].

    [inputs] must bind exactly [p.inputs], each of the pipeline's
    extent.  [params] overrides pipeline parameter defaults by name.
    [repeat] (default 1) executes the plan that many times over the
    same buffers — [exec_ms] is the fastest sample, for benchmarking;
    outputs come from the last run.

    [deadline] (default {!Deadline.none}) bounds the whole execution:
    it is checked between [repeat] timing samples in both modes (a
    large [repeat] stops early with [KF0905] instead of overrunning),
    and in {!Subprocess} mode it also feeds the supervisor's watchdog,
    so a wedged child is killed rather than outlived.  [limits]
    (default {!Supervisor.no_limits}) applies rlimits to {!Subprocess}
    children; {!Dlopen} runs in-process and cannot be resource-capped —
    that is exactly why [kfused] defaults to the sandboxed subprocess
    path.

    When [mode] is omitted the backend tries {!Dlopen} and falls back
    to {!Subprocess} if the shared object cannot be loaded, recording
    the load failure in [warnings]; an explicit [mode] never falls
    back. *)
val run :
  ?mode:mode ->
  ?tile:int * int ->
  ?cache_dir:string ->
  ?params:(string * float) list ->
  ?repeat:int ->
  ?deadline:Deadline.t ->
  ?limits:Supervisor.limits ->
  Pipeline.t ->
  (string * Image.t) list ->
  (run_result, Diag.t) result

(** {1 Pinned plans}

    A {!plan} amortizes the per-call setup of {!run} across many
    executions of the same pipeline — the unit of work of a stream
    session.  {!prepare} pays for the compile-cache lookup (and, in
    {!Dlopen} mode, the [dlopen]+[dlsym]) exactly once; {!run_plan} is
    then a bare entry-point call ({!Dlopen}) or a supervised spawn of
    the already-built executable ({!Subprocess}), with no cache lookup,
    no loader traffic and no compiler anywhere on the per-frame path. *)

type plan
(** A compiled pipeline pinned in memory: artifact path plus, in
    {!Dlopen} mode, the loaded handle and resolved entry point. *)

(** [prepare ?tile ?cache_dir ~mode p] compiles (or reuses) the artifact
    for [p] and pins it.  In {!Dlopen} mode the shared object is loaded
    and the entry point resolved immediately; a load failure is
    [KF0904], letting callers retry with [~mode:Subprocess]. *)
val prepare :
  ?tile:int * int ->
  ?cache_dir:string ->
  mode:mode ->
  Pipeline.t ->
  (plan, Diag.t) result

val plan_mode : plan -> mode
val plan_artifact : plan -> string

val plan_cached : plan -> bool
(** Whether {!prepare} found the artifact already in the compile cache. *)

val plan_compile_ms : plan -> float
(** Wall-clock the C compiler took at {!prepare} time; [0] on a hit. *)

val plan_pipeline : plan -> Pipeline.t

(** [run_plan ?params ?repeat ?deadline ?limits plan inputs] executes
    the pinned plan; contract as {!run} ([inputs] binds exactly the
    pipeline's inputs, failures are typed [KF0904..KF0907]), except
    nothing is compiled or loaded: [compile_ms] is always [0] and
    [cached] reports what {!prepare} saw.
    @raise Invalid_argument after {!release}. *)
val run_plan :
  ?params:(string * float) list ->
  ?repeat:int ->
  ?deadline:Deadline.t ->
  ?limits:Supervisor.limits ->
  plan ->
  (string * Image.t) list ->
  (run_result, Diag.t) result

val release : plan -> unit
(** Drop the pinned handle ([dlclose] in {!Dlopen} mode).  Idempotent. *)

val compiles : unit -> int
(** Process-wide count of real compiler invocations (compile-cache
    misses) since startup.  Tests assert per-stream compile counts as
    deltas of this counter. *)
