lib/ir/kernel.ml: Expr Format List Printf String
