type t = { width : int; height : int; data : float array }

let create ~width ~height () =
  if width <= 0 || height <= 0 then invalid_arg "Image.create: nonpositive extent";
  { width; height; data = Array.make (width * height) 0.0 }

let width img = img.width
let height img = img.height

let in_bounds img x y = x >= 0 && x < img.width && y >= 0 && y < img.height

let get img x y =
  if not (in_bounds img x y) then invalid_arg "Image.get: out of bounds";
  img.data.((y * img.width) + x)

let set img x y v =
  if not (in_bounds img x y) then invalid_arg "Image.set: out of bounds";
  img.data.((y * img.width) + x) <- v

let get_bordered img mode x y =
  match Border.resolve mode ~width:img.width ~height:img.height x y with
  | Border.Inside (x', y') -> img.data.((y' * img.width) + x')
  | Border.Const_value c -> c
  | Border.Undef -> invalid_arg "Image.get_bordered: undefined border access"

let init ~width ~height f =
  let img = create ~width ~height () in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      img.data.((y * width) + x) <- f x y
    done
  done;
  img

let to_flat img = Array.copy img.data

let of_flat ~width ~height data =
  if width <= 0 || height <= 0 then invalid_arg "Image.of_flat: nonpositive extent";
  if Array.length data <> width * height then
    invalid_arg "Image.of_flat: length does not match extent";
  { width; height; data = Array.copy data }

let unsafe_data img = img.data

let unsafe_of_flat ~width ~height data =
  if width <= 0 || height <= 0 then
    invalid_arg "Image.unsafe_of_flat: nonpositive extent";
  if Array.length data <> width * height then
    invalid_arg "Image.unsafe_of_flat: length does not match extent";
  { width; height; data }

let const ~width ~height v =
  let img = create ~width ~height () in
  Array.fill img.data 0 (width * height) v;
  img

let of_rows rows =
  match rows with
  | [] -> invalid_arg "Image.of_rows: empty"
  | first :: _ ->
    let width = List.length first in
    let height = List.length rows in
    if width = 0 then invalid_arg "Image.of_rows: empty row";
    if List.exists (fun r -> List.length r <> width) rows then
      invalid_arg "Image.of_rows: ragged rows";
    let img = create ~width ~height () in
    List.iteri (fun y row -> List.iteri (fun x v -> set img x y v) row) rows;
    img

let copy img = { img with data = Array.copy img.data }

let map f img = { img with data = Array.map f img.data }

let mapi f img =
  init ~width:img.width ~height:img.height (fun x y -> f x y (get img x y))

let map2 f a b =
  if a.width <> b.width || a.height <> b.height then
    invalid_arg "Image.map2: extent mismatch";
  { a with data = Array.map2 f a.data b.data }

let fold f acc img = Array.fold_left f acc img.data

let equal a b =
  a.width = b.width && a.height = b.height
  && Array.for_all2 (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a.data b.data

let max_abs_diff a b =
  if a.width <> b.width || a.height <> b.height then
    invalid_arg "Image.max_abs_diff: extent mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = Float.abs (x -. b.data.(i)) in
      if d > !worst then worst := d)
    a.data;
  !worst

let equal_eps ~eps a b =
  a.width = b.width && a.height = b.height && max_abs_diff a b <= eps

let random rng ~width ~height ~lo ~hi =
  init ~width ~height (fun _ _ -> lo +. Kfuse_util.Rng.float rng (hi -. lo))

let pp ppf img =
  Format.fprintf ppf "@[<v>";
  for y = 0 to img.height - 1 do
    for x = 0 to img.width - 1 do
      if x > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%8.3f" (get img x y)
    done;
    if y < img.height - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
