test/test_legality.ml: Alcotest Helpers Kfuse_apps Kfuse_fusion Kfuse_image Kfuse_ir Kfuse_util List Option Printf String
