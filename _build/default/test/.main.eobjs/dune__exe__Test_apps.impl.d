test/test_apps.ml: Alcotest Array Float Helpers Kfuse_apps Kfuse_fusion Kfuse_graph Kfuse_image Kfuse_ir Kfuse_util List Option Printf
