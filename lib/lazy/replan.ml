module Iset = Kfuse_util.Iset
module Diag = Kfuse_util.Diag
module Faults = Kfuse_util.Faults
module Digraph = Kfuse_graph.Digraph
module Partition = Kfuse_graph.Partition
module Pipeline = Kfuse_ir.Pipeline
module Validate = Kfuse_ir.Validate
module Config = Kfuse_fusion.Config
module Benefit = Kfuse_fusion.Benefit
module Legality = Kfuse_fusion.Legality
module Mincut = Kfuse_fusion.Mincut_fusion
module Transform = Kfuse_fusion.Transform
module Fingerprint = Kfuse_cache.Fingerprint

let seam_fault = "lazy.seam"

type stats = {
  blocks_reused : int;
  blocks_replanned : int;
  edges_reused : int;
  edges_rescored : int;
  fell_back : bool;
}

type plan = {
  pipeline : Pipeline.t;
  partition : Partition.t;
  edges : Benefit.edge_report list;
  steps : Mincut.step list;
  objective : float;
  fused : Pipeline.t;
  fingerprint : string;
  stats : stats;
}

(* A stored decision is positional: [side_a] holds dense indices into
   the ascending enumeration of the block it was recorded for.  Equal
   subgraph fingerprints guarantee an order-preserving isomorphism
   between the recorded block and the block being looked up, so mapping
   the positions through the new block's own enumeration reconstructs
   exactly the side the fresh min cut would emit. *)
type stored = S_accept | S_split of { cut_weight : float; side_a : int list }

type t = {
  config : Config.t;
  decisions : (string, stored) Hashtbl.t;
  (* key -> (scenario tag, delta, phi, weight); legal scenarios only *)
  edge_memo : (string, int * float * float * float) Hashtbl.t;
  mutable last : plan option;
}

let create config =
  Config.validate config;
  {
    config;
    decisions = Hashtbl.create 64;
    edge_memo = Hashtbl.create 64;
    last = None;
  }

let config t = t.config

let clear t =
  Hashtbl.reset t.decisions;
  Hashtbl.reset t.edge_memo;
  t.last <- None

let memo_size t = (Hashtbl.length t.decisions, Hashtbl.length t.edge_memo)
let last t = t.last

(* --- edge memo ------------------------------------------------------ *)

let scenario_tag = function
  | Benefit.Point_based -> 0
  | Benefit.Point_to_local -> 1
  | Benefit.Local_to_local -> 2
  | Benefit.Illegal _ -> invalid_arg "Replan: illegal scenarios are not memoized"

let scenario_of_tag = function
  | 0 -> Benefit.Point_based
  | 1 -> Benefit.Point_to_local
  | _ -> Benefit.Local_to_local

let edge_key (p : Pipeline.t) hashes u v =
  (* Everything [Benefit.edge_report] reads besides the session config:
     the endpoints' transitive content (hash.twin renders every mask,
     border mode, offset and upstream definition), the iteration space,
     and whether the producer has a consumer other than [v] — the one
     graph fact pair-legality (fig. 2c) depends on. *)
  let hu, tu = hashes.(u) and hv, tv = hashes.(v) in
  let other = Iset.cardinal (Pipeline.consumers p u) > 1 in
  Printf.sprintf "%dx%dx%d|%s.%d>%s.%d|%b" p.Pipeline.width p.Pipeline.height
    p.Pipeline.channels hu tu hv tv other

let score_edges t (p : Pipeline.t) hashes =
  let reused = ref 0 and rescored = ref 0 in
  let reports =
    List.map
      (fun (u, v) ->
        let key = edge_key p hashes u v in
        match Hashtbl.find_opt t.edge_memo key with
        | Some (tag, delta, phi, weight) ->
          incr reused;
          {
            Benefit.src = u;
            dst = v;
            image = Pipeline.edge_image p u v;
            scenario = scenario_of_tag tag;
            delta;
            phi;
            weight;
          }
        | None ->
          incr rescored;
          let r = Benefit.edge_report t.config p u v in
          (match r.Benefit.scenario with
          | Benefit.Illegal _ ->
            (* an Illegal reason names kernels by pipeline index, which
               would be stale on replay — re-score these each flush *)
            ()
          | s -> Hashtbl.replace t.edge_memo key (scenario_tag s, r.delta, r.phi, r.weight));
          r)
      (Digraph.edges (Pipeline.dag p))
  in
  (reports, !reused, !rescored)

(* --- decision memo --------------------------------------------------- *)

let lookup t p hashes block =
  match Hashtbl.find_opt t.decisions (Fingerprint.subgraph ~hashes p block) with
  | None -> None
  | Some S_accept -> Some Mincut.Accepted
  | Some (S_split { cut_weight; side_a }) ->
    let verts = Array.of_list (Iset.elements block) in
    let a = List.fold_left (fun acc i -> Iset.add verts.(i) acc) Iset.empty side_a in
    (* The stored reason would carry the recording pipeline's kernel
       indices; one legality check re-derives it against this pipeline,
       keeping the trace bit-identical to a fresh run. *)
    let reason =
      match Legality.check t.config p block with Ok () -> None | Error r -> Some r
    in
    Some (Mincut.Split { reason; cut_weight; side_a = a; side_b = Iset.diff block a })

let record t p hashes block (d : Mincut.decision) =
  let key = Fingerprint.subgraph ~hashes p block in
  let stored =
    match d with
    | Mincut.Accepted -> S_accept
    | Mincut.Split { cut_weight; side_a; _ } ->
      let pos = Hashtbl.create 16 in
      List.iteri (fun i v -> Hashtbl.replace pos v i) (Iset.elements block);
      S_split
        { cut_weight; side_a = List.filter_map (Hashtbl.find_opt pos) (Iset.elements side_a) }
  in
  Hashtbl.replace t.decisions key stored

(* --- planning -------------------------------------------------------- *)

let plan_fingerprint ~pipeline ~partition ~objective ~fused =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fingerprint.exact pipeline);
  List.iter
    (fun b -> Buffer.add_string buf (Format.asprintf "|%a" Iset.pp b))
    partition;
  Buffer.add_string buf (Printf.sprintf "|%h|" objective);
  Buffer.add_string buf (Fingerprint.exact fused);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let finish t p (r : Mincut.result) ~stats =
  match Transform.apply ~exchange:true p r.Mincut.partition with
  | exception Invalid_argument msg ->
    Error (Diag.errorf Diag.Invalid_partition "lazy replan: fused build failed: %s" msg)
  | fused ->
    let plan =
      {
        pipeline = p;
        partition = r.Mincut.partition;
        edges = r.Mincut.edges;
        steps = r.Mincut.steps;
        objective = r.Mincut.objective;
        fused;
        fingerprint =
          plan_fingerprint ~pipeline:p ~partition:r.Mincut.partition
            ~objective:r.Mincut.objective ~fused;
        stats;
      }
    in
    t.last <- Some plan;
    Ok plan

let plan ?pool t p =
  match Validate.result p with
  | Error d -> Error d
  | Ok p -> (
    try
      let hashes = Fingerprint.kernel_hashes p in
      let edges, edges_reused, edges_rescored = score_edges t p hashes in
      let blocks_reused = ref 0 and blocks_replanned = ref 0 in
      let lookup block =
        match lookup t p hashes block with
        | Some _ as d ->
          incr blocks_reused;
          d
        | None ->
          incr blocks_replanned;
          None
      in
      let result =
        Mincut.run ?pool ~lookup ~record:(record t p hashes) ~edges t.config p
      in
      (* Seam re-check: reused decisions are provably equivalent, but an
         incremental planner that silently returns a stale plan is the
         exact failure mode this module exists to prevent — the
         invariant is enforced, not assumed. *)
      let seam =
        if Faults.fires seam_fault then
          Error (Diag.errorf Diag.Fault_injected "seam re-check fault (%s)" seam_fault)
        else Legality.check_partition t.config p result.Mincut.partition
      in
      match seam with
      | Ok () ->
        finish t p result
          ~stats:
            {
              blocks_reused = !blocks_reused;
              blocks_replanned = !blocks_replanned;
              edges_reused;
              edges_rescored;
              fell_back = false;
            }
      | Error _ ->
        (* Degrade: the memo can no longer be trusted.  Drop it and
           replan this flush from scratch (repopulating both memos). *)
        Hashtbl.reset t.decisions;
        Hashtbl.reset t.edge_memo;
        let edges, _, edges_rescored = score_edges t p hashes in
        let result = Mincut.run ?pool ~record:(record t p hashes) ~edges t.config p in
        (match Legality.check_partition t.config p result.Mincut.partition with
        | Error d -> Error d
        | Ok () ->
          finish t p result
            ~stats:
              {
                blocks_reused = 0;
                blocks_replanned = List.length result.Mincut.steps;
                edges_reused = 0;
                edges_rescored;
                fell_back = true;
              })
    with
    | Faults.Fault { point; hit } ->
      Error (Diag.errorf Diag.Fault_injected "fault at %s (hit %d)" point hit)
    | Invalid_argument msg -> Error (Diag.errorf Diag.Strategy_failed "lazy replan: %s" msg))

let scratch ?pool config p = plan ?pool (create config) p
