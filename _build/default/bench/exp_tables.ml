(* Experiments tab1 and tab2: the speedup comparisons of Table I and the
   geometric means of Table II, printed next to the paper's values. *)

module Stats = Kfuse_util.Stats

let comparisons =
  [
    ("Optimized Fusion over Baseline", Runner.Baseline, Runner.Optimized,
     Paper_data.table1_opt_over_base);
    ("Basic Fusion over Baseline", Runner.Baseline, Runner.Basic,
     Paper_data.table1_basic_over_base);
    ("Optimized Fusion over Basic Fusion", Runner.Basic, Runner.Optimized,
     Paper_data.table1_opt_over_basic);
  ]

let speedup_cell app_name den num device =
  let app = Runner.app app_name in
  Runner.median app den device /. Runner.median app num device

let tab1 () =
  print_endline "=== tab1: speedup comparison (ours vs paper Table I) ===";
  List.iter
    (fun (title, den, num, paper) ->
      Printf.printf "--- %s ---\n" title;
      Printf.printf "%-8s" "";
      List.iter (fun a -> Printf.printf "  %-16s" a) Paper_data.app_names;
      print_newline ();
      List.iteri
        (fun di (device : Kfuse_gpu.Device.t) ->
          Printf.printf "%-8s" device.Kfuse_gpu.Device.name;
          List.iter
            (fun app_name ->
              let ours = speedup_cell app_name den num device in
              let ref_v = List.nth (List.assoc app_name paper) di in
              Printf.printf "  %5.3f (p %5.3f)" ours ref_v)
            Paper_data.app_names;
          print_newline ())
        Runner.all_devices;
      print_newline ())
    comparisons

let tab2 () =
  print_endline "=== tab2: geometric mean of speedups across all GPUs (vs Table II) ===";
  Printf.printf "%-16s" "";
  List.iter (fun a -> Printf.printf "  %-16s" a) Paper_data.app_names;
  print_newline ();
  List.iter
    (fun (row_name, den, num, select) ->
      Printf.printf "%-16s" row_name;
      List.iter
        (fun app_name ->
          let ours =
            Stats.geomean
              (List.map (fun d -> speedup_cell app_name den num d) Runner.all_devices)
          in
          let o, b, ob = List.assoc app_name Paper_data.table2 in
          let ref_v = select (o, b, ob) in
          Printf.printf "  %5.3f (p %5.3f)" ours ref_v)
        Paper_data.app_names;
      print_newline ())
    [
      ("Optm over Base", Runner.Baseline, Runner.Optimized, fun (o, _, _) -> o);
      ("Basic over Base", Runner.Baseline, Runner.Basic, fun (_, b, _) -> b);
      ("Optm over Basic", Runner.Basic, Runner.Optimized, fun (_, _, ob) -> ob);
    ];
  print_newline ()
