(* Bechamel micro-benchmarks of the compiler itself (not a paper table):
   Stoer-Wagner min cut, Algorithm 1 end-to-end, the fusion transform,
   and DSL parsing.  One Test.make per subject, all in one executable. *)

open Bechamel
open Toolkit

module F = Kfuse_fusion
module Wgraph = Kfuse_graph.Wgraph
module Sw = Kfuse_graph.Stoer_wagner
module Iset = Kfuse_util.Iset

(* A reproducible random connected weighted graph with [n] vertices. *)
let random_wgraph n seed =
  let rng = Kfuse_util.Rng.create seed in
  let g = ref Wgraph.empty in
  for i = 1 to n - 1 do
    g := Wgraph.add_edge !g (Kfuse_util.Rng.int rng i) i (1.0 +. Kfuse_util.Rng.float rng 9.0)
  done;
  for _ = 1 to 2 * n do
    let u = Kfuse_util.Rng.int rng n and v = Kfuse_util.Rng.int rng n in
    if u <> v then g := Wgraph.add_edge !g u v (1.0 +. Kfuse_util.Rng.float rng 9.0)
  done;
  !g

let mincut_test n =
  let g = random_wgraph n 42 in
  Test.make ~name:(Printf.sprintf "stoer_wagner/n=%d" n)
    (Staged.stage (fun () -> ignore (Sw.min_cut g)))

let harris = Kfuse_apps.Harris.pipeline ()

let algorithm1_test =
  Test.make ~name:"algorithm1/harris"
    (Staged.stage (fun () -> ignore (F.Mincut_fusion.run Runner.config harris)))

let transform_test =
  let partition = F.Mincut_fusion.partition Runner.config harris in
  Test.make ~name:"transform/harris"
    (Staged.stage (fun () -> ignore (F.Transform.apply harris partition)))

let benefit_test =
  Test.make ~name:"benefit/harris-edges"
    (Staged.stage (fun () -> ignore (F.Benefit.all_edges Runner.config harris)))

let dsl_src =
  {|pipeline edges(img) {
      size 2048 2048
      gx = conv(img, sobelx, clamp)
      gy = conv(img, sobely, clamp)
      mag = sqrt(gx*gx + gy*gy)
    }|}

let dsl_test =
  Test.make ~name:"dsl/parse+elaborate"
    (Staged.stage (fun () ->
         match Kfuse_dsl.Elaborate.parse_pipeline dsl_src with
         | Ok _ -> ()
         | Error e -> failwith e))

let codegen_test =
  Test.make ~name:"codegen/harris"
    (Staged.stage (fun () -> ignore (Kfuse_codegen.Lower.emit_pipeline harris)))

let tests =
  Test.make_grouped ~name:"kfuse"
    [
      mincut_test 8; mincut_test 32; mincut_test 128; algorithm1_test; transform_test;
      benefit_test; dsl_test; codegen_test;
    ]

let run () =
  print_endline "=== micro: Bechamel benchmarks of the compiler itself ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> Printf.printf "  %-28s %12.1f ns/run\n" name t
      | Some [] | None -> Printf.printf "  %-28s (no estimate)\n" name)
    (List.sort compare rows);
  print_newline ()
