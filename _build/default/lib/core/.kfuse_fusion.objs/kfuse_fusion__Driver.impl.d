lib/core/driver.ml: Basic_fusion Benefit Config Format Greedy_fusion Inline_fusion Kfuse_graph Kfuse_ir Kfuse_util List Mincut_fusion String Transform
