lib/dsl/elaborate.ml: Ast Float Kfuse_image Kfuse_ir List Option Parser Printf
