(** Structured diagnostics.

    Every user-facing failure of the compiler — bad DSL input, a
    malformed pipeline graph, an I/O error, an internal fault the driver
    degraded around — is described by a {!t}: a stable error code, a
    severity, optional source context, and a human-readable message.
    Public entry points return [('a, Diag.t) result] instead of raising
    [Failure]/[Invalid_argument], so callers (the [kfusec] CLI, library
    users, tests) can render, count, and dispatch on failures without
    string matching.

    The raising world is bridged both ways: {!Fatal} wraps a diagnostic
    as an exception for code that cannot return [result], and {!of_exn}
    folds common stdlib exceptions into diagnostics. *)

type severity = Error | Warning | Note

(** Stable diagnostic codes.  The numeric identifier ({!code_id}) is
    part of the CLI contract documented in the README; add codes at the
    end of a block, never renumber. *)
type code =
  | Io_error  (** KF0101: file missing/unreadable/unwritable *)
  | Parse_error  (** KF0201: DSL lexical or syntax error *)
  | Elab_error  (** KF0202: DSL name resolution / elaboration error *)
  | Pgm_format  (** KF0301: malformed or truncated PGM image *)
  | Config_invalid  (** KF0401: fusion-model configuration out of range *)
  | Cycle  (** KF0501: dependence cycle in the kernel graph *)
  | Dangling_ref  (** KF0502: kernel reads an image nothing produces *)
  | Duplicate_name  (** KF0503: duplicate kernel/input/parameter id *)
  | Empty_iteration_space  (** KF0504: nonpositive width/height/channels *)
  | Mask_too_large  (** KF0505: stencil window exceeds the iteration space *)
  | Global_consumed  (** KF0506: 1x1 reduction output consumed downstream *)
  | Unbound_param  (** KF0507: kernel parameter without a default *)
  | Empty_pipeline  (** KF0508: pipeline with no kernels *)
  | Invalid_partition  (** KF0601: blocks not disjoint/covering or illegal *)
  | Strategy_failed  (** KF0602: a fusion strategy raised *)
  | Budget_exceeded  (** KF0603: fusion search ran past [--budget-ms] *)
  | Cache_corrupt
      (** KF0701: an on-disk plan-cache entry is unreadable or fails its
          integrity checks (always survivable: treated as a miss) *)
  | Protocol_error  (** KF0801: malformed [kfused] wire request/response *)
  | Service_error  (** KF0802: [kfused] server-side failure *)
  | Overloaded
      (** KF0803: [kfused] shed this connection — workers and admission
          queue full; safe to retry after a backoff *)
  | Request_timeout
      (** KF0804: a [kfused] request (or its reply) overran its
          wall-clock deadline, or the peer went silent mid-frame *)
  | Stream_backpressure
      (** KF0805: a [stream_push] was shed because the session's bounded
          frame queue is full — the frame was NOT processed and the
          temporal state did not advance; safe to retry after a backoff *)
  | Stream_unknown
      (** KF0806: a stream op named a session id the server does not
          hold (never opened, already closed, or expired on idle) *)
  | Shard_degraded
      (** KF0807: the sharded router served this request away from its
          home shard (crashed, restarting, or marked dead) — the reply
          is correct but cache locality is degraded; always a warning *)
  | Shard_unavailable
      (** KF0808: the sharded router found no live shard for the
          request's keyspace — every candidate is down or restarting;
          safe to retry after a backoff *)
  | Fault_injected  (** KF0901: deterministic fault-injection trigger *)
  | Toolchain_missing
      (** KF0902: no usable C compiler for the native execution backend
          (nothing on [PATH], or [KFUSE_CC] names a broken one) *)
  | Compile_failed
      (** KF0903: the system compiler rejected generated C — always a
          codegen bug or a broken local toolchain, never user input *)
  | Exec_failed
      (** KF0904: a compiled fused plan could not be loaded or run
          (dlopen/dlsym failure, crashed subprocess, truncated output) *)
  | Exec_timeout
      (** KF0905: a supervised native execution overran its wall-clock
          deadline and was killed by the watchdog (SIGTERM, escalated to
          SIGKILL if it refused to die) *)
  | Exec_crashed
      (** KF0906: a supervised native execution died on a crash signal
          (SIGSEGV, SIGBUS, SIGFPE, ...); the message carries the signal
          name and a capped stderr tail *)
  | Exec_limit
      (** KF0907: a supervised native execution exceeded a sandbox
          resource limit — RLIMIT_CPU, RLIMIT_AS (allocation failure
          under the cap) or RLIMIT_FSIZE *)
  | Internal_error  (** KF0999: invariant violation inside the compiler *)

type context = {
  file : string option;
  line : int option;
  col : int option;
}

type t = {
  code : code;
  severity : severity;
  message : string;
  context : context;
}

exception Fatal of t
(** A diagnostic as an exception, for raising contexts ([--strict]). *)

val code_id : code -> string
(** [code_id c] is the stable identifier, e.g. ["KF0601"]. *)

val code_of_id : string -> code option
(** [code_of_id "KF0601"] is [Some Invalid_partition]: the inverse of
    {!code_id}, used to fold wire-level error codes back into typed
    diagnostics on the [kfused] client side. *)

val no_context : context

val v : ?severity:severity -> ?file:string -> ?line:int -> ?col:int -> code -> string -> t

val errorf :
  ?file:string -> ?line:int -> ?col:int -> code -> ('a, unit, string, t) format4 -> 'a
(** [errorf code fmt ...] is an [Error]-severity diagnostic. *)

val warningf :
  ?file:string -> ?line:int -> ?col:int -> code -> ('a, unit, string, t) format4 -> 'a

val is_error : t -> bool

val severity_to_string : severity -> string

val to_string : t -> string
(** ["error[KF0502]: file.pipe:3:7: kernel \"gx\" reads unknown image"].
    Context components are omitted when absent. *)

val pp : Format.formatter -> t -> unit

val of_exn : exn -> t
(** Fold an exception into a diagnostic: {!Fatal} unwraps, [Sys_error]
    becomes {!Io_error}, [Invalid_argument]/[Failure]/[Not_found] become
    {!Internal_error}, anything else is {!Internal_error} carrying
    [Printexc.to_string]. *)

val fail : t -> 'a
(** [fail d] raises [Fatal d]. *)

val catch : (unit -> 'a) -> ('a, t) result
(** [catch f] runs [f], mapping a raised exception through {!of_exn}.
    Asynchronous runtime exceptions ([Out_of_memory], [Stack_overflow])
    are not caught. *)
