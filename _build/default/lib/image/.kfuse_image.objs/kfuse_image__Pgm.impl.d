lib/image/pgm.ml: Buffer Char Float Fun Image Printf String
