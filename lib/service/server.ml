module Diag = Kfuse_util.Diag
module Deadline = Kfuse_util.Deadline
module Faults = Kfuse_util.Faults
module Pool = Kfuse_util.Pool
module Iset = Kfuse_util.Iset
module Plan_cache = Kfuse_cache.Plan_cache
module Fingerprint = Kfuse_cache.Fingerprint
module F = Kfuse_fusion
module Ir = Kfuse_ir
module Image = Kfuse_image.Image
module Native = Kfuse_exec.Native
module Supervisor = Kfuse_exec.Supervisor
module Toolchain = Kfuse_exec.Toolchain
module Session = Kfuse_stream.Session
module Frames = Kfuse_stream.Frames
module Lz = Kfuse_lazy

(* One open stream: the per-stream temporal state plus the pinned
   compiled plan.  [in_flight] (under the server's [streams_lock]) is
   the bounded per-session frame queue — pushes beyond [stream_queue]
   are shed with [KF0805] before touching any state.  [s_lock]
   serializes frame execution so the temporal window advances exactly
   once per processed frame.  [closed] marks a stream removed from the
   table while pushes are still draining; the last one out releases the
   pinned plan. *)
type stream = {
  stream_id : string;
  session : Session.t;
  stream_seed : int;
  stream_fp : string;  (* exact fingerprint, the breaker's key *)
  stream_plan : Native.plan option;  (* None = interpreter-only stream *)
  s_lock : Mutex.t;
  mutable seq_hint : int;  (* frames processed; informational *)
  mutable last_used : float;
  mutable in_flight : int;
  mutable closed : bool;
}

(* One open lazy-pipeline editing session: a mutable builder plus its
   incremental replanning memos.  [lz_lock] serializes edits and flushes
   (builders are not thread-safe).  Unlike streams, a lazy session pins
   no native plan, so close and idle-expiry are pure table removals. *)
type lazy_session = {
  lz_id : string;
  builder : Lz.Lazy_pipeline.t;
  lz_lock : Mutex.t;
  mutable lz_last_used : float;
  mutable lz_flushes : int;
}

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  cache : Plan_cache.t;
  pool : Pool.t;
  default_budget_ms : float option;
  request_timeout_ms : float;  (* <= 0. disables deadlines and socket timeouts *)
  drain_timeout_ms : float;
  metrics : Metrics.t;
  (* Native-execution safety net: how generated code is run
     ([exec_sandbox]), the rlimits applied to sandboxed children, where
     crash artifacts are persisted, and the per-fingerprint circuit
     breaker that quarantines plans that keep crashing. *)
  exec_sandbox : Supervisor.policy;
  exec_limits : Supervisor.limits;
  crash_dir : string;
  breaker : Supervisor.Breaker.t;
  started_at : float;
  stopping : bool Atomic.t;
  (* Set by [signal_stop] — possibly from a signal handler, so it must
     stay a bare atomic store: [wait]'s polling loop notices it and runs
     the real stop work (locks, broadcast, accept poke) in a normal
     thread context. *)
  stop_requested : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  mutable workers : Thread.t array;
  max_conns : int;
  queue_bound : int;
  (* Admission state, all under [q_lock]: accepted connections wait in
     [queue] until one of the [max_conns] workers picks them up.  [busy]
     counts workers serving a connection; [active.(i)] is the fd worker
     [i] is serving, so a forced drain can shut it down. *)
  q_lock : Mutex.t;
  q_cond : Condition.t;
  queue : Unix.file_descr Queue.t;
  mutable busy : int;
  active : Unix.file_descr option array;
  (* Stream sessions, under [streams_lock].  [max_streams] bounds open
     sessions ([KF0803] beyond it), [stream_queue] bounds each session's
     in-flight pushes ([KF0805] beyond it), [stream_idle_ms] is the lazy
     idle-expiry horizon (<= 0 disables). *)
  streams_lock : Mutex.t;
  streams : (string, stream) Hashtbl.t;
  next_stream : int Atomic.t;
  max_streams : int;
  stream_queue : int;
  stream_idle_ms : float;
  (* Lazy editing sessions, under [lazies_lock].  They share the
     [max_streams] bound (each table bounded independently) and the
     [stream_idle_ms] idle-expiry horizon. *)
  lazies_lock : Mutex.t;
  lazies : (string, lazy_session) Hashtbl.t;
  next_lazy : int Atomic.t;
}

let socket t = t.socket_path
let cache t = t.cache
let metrics t = t.metrics

let in_flight t =
  Mutex.lock t.q_lock;
  let n = t.busy + Queue.length t.queue in
  Mutex.unlock t.q_lock;
  n

(* ---- request handling ---- *)

let load_pipeline ?size (f : Protocol.fuse_request) =
  match (f.Protocol.app, f.Protocol.source) with
  | Some name, _ -> (
    match Kfuse_apps.Registry.find name with
    | Some e -> (
      match size with
      | None -> Ok (e.Kfuse_apps.Registry.pipeline ())
      | Some (width, height) -> Ok (e.Kfuse_apps.Registry.small ~width ~height))
    | None ->
      Error
        (Diag.errorf Diag.Io_error "unknown application %S (try: %s)" name
           (String.concat ", " Kfuse_apps.Registry.names)))
  | None, Some src ->
    if size <> None then
      Error
        (Diag.v Diag.Protocol_error
           "width/height overrides apply to registry apps only, not DSL source")
    else Kfuse_dsl.Elaborate.parse_pipeline_diag src
  | None, None -> Error (Diag.v Diag.Protocol_error "fuse without app or source")

let validated p =
  match Ir.Validate.result p with Ok p -> Ok p | Error d -> Error d

let block_names (p : Ir.Pipeline.t) block =
  List.map (fun i -> Jsonx.Str (Ir.Pipeline.kernel p i).Ir.Kernel.name) (Iset.elements block)

let report_fields (r : F.Driver.report) =
  [
    ("strategy", Jsonx.Str (F.Driver.strategy_to_string r.F.Driver.strategy));
    ("kernels_in", Jsonx.Num (float_of_int (Ir.Pipeline.num_kernels r.F.Driver.input)));
    ("kernels_out", Jsonx.Num (float_of_int (Ir.Pipeline.num_kernels r.F.Driver.fused)));
    ("objective", Jsonx.Num r.F.Driver.objective);
    ( "partition",
      Jsonx.Arr
        (List.map (fun b -> Jsonx.Arr (block_names r.F.Driver.input b)) r.F.Driver.partition)
    );
    ("inlined", Jsonx.Arr (List.map (fun s -> Jsonx.Str s) r.F.Driver.inlined));
    ("degraded", Jsonx.Bool r.F.Driver.degraded);
    ( "warnings",
      Jsonx.Arr (List.map (fun d -> Jsonx.Str (Diag.to_string d)) r.F.Driver.warnings) );
  ]

(* Shared planning path of [fuse] and [fuse_exec]: load, validate,
   budget against the deadline, serve from the plan cache. *)
let plan t ~deadline ?size (f : Protocol.fuse_request) =
  match Result.bind (load_pipeline ?size f) validated with
  | Error _ as e -> e
  | Ok p ->
    let default = F.Config.default in
    let config =
      {
        default with
        F.Config.c_mshared = Option.value ~default:default.F.Config.c_mshared f.Protocol.c_mshared;
        gamma = Option.value ~default:default.F.Config.gamma f.Protocol.gamma;
        tg = Option.value ~default:default.F.Config.tg f.Protocol.tg;
      }
    in
    let strategy = f.Protocol.strategy in
    let optimize = f.Protocol.optimize and inline = f.Protocol.inline in
    (* The fusion-search budget is capped by what remains of the
       request's wall-clock deadline: a request that already spent its
       time queueing degrades (or fails under strict) immediately
       instead of hanging in the search. *)
    let budget_ms =
      let base =
        match f.Protocol.budget_ms with Some b -> Some b | None -> t.default_budget_ms
      in
      match (Deadline.remaining_ms deadline, base) with
      | None, b -> b
      | Some r, None -> Some r
      | Some r, Some b -> Some (Float.min r b)
    in
    let compute () =
      let t0 = Unix.gettimeofday () in
      match
        F.Driver.run_result ~optimize ~inline ~strict:f.Protocol.strict ~pool:t.pool
          ?budget_ms config strategy p
      with
      | Error _ as e -> e
      | Ok r -> Ok (r, (Unix.gettimeofday () -. t0) *. 1000.)
    in
    if f.Protocol.no_cache then
      Result.map (fun (r, ms) -> (r, "bypass", ms)) (compute ())
    else begin
      let key = Fingerprint.plan_key ~config ~strategy ~optimize ~inline p in
      match Plan_cache.find t.cache key with
      | Some (r, outcome) -> Ok (r, Plan_cache.outcome_to_string outcome, 0.0)
      | None -> (
        match compute () with
        | Error _ as e -> e
        | Ok (r, ms) ->
          Plan_cache.store t.cache key r;
          (* find-then-store keeps the outcome (miss vs miss-iso)
             distinction out of the hot reply path; the distinction
             lives in the cache stats. *)
          Ok (r, "miss", ms))
    end

let plan_fields (r, outcome, plan_ms) =
  report_fields r
  @ [
      ("cached", Jsonx.Bool (outcome = "hit" || outcome = "hit-disk"));
      ("outcome", Jsonx.Str outcome);
      ("plan_ms", Jsonx.Num plan_ms);
    ]

let handle_fuse t ~deadline (f : Protocol.fuse_request) =
  match plan t ~deadline f with
  | Error d -> Protocol.error d
  | Ok served -> Protocol.ok (plan_fields served)

let output_json ~return_pixels (name, img) =
  let w = Image.width img and h = Image.height img in
  let n = w * h in
  let lo = ref Float.infinity and hi = ref Float.neg_infinity and sum = ref 0.0 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let v = Image.get img x y in
      if v < !lo then lo := v;
      if v > !hi then hi := v;
      sum := !sum +. v
    done
  done;
  let base =
    [
      ("name", Jsonx.Str name);
      ("width", Jsonx.Num (float_of_int w));
      ("height", Jsonx.Num (float_of_int h));
      ("min", Jsonx.Num !lo);
      ("max", Jsonx.Num !hi);
      ("mean", Jsonx.Num (!sum /. float_of_int (max 1 n)));
    ]
  in
  let pixels =
    if not return_pixels then []
    else
      [
        ( "pixels",
          Jsonx.Arr
            (List.init h (fun y ->
                 Jsonx.Arr (List.init w (fun x -> Jsonx.Num (Image.get img x y))))) );
      ]
  in
  Jsonx.Obj (base @ pixels)

(* A quarantined plan still answers: the interpreter computes the
   pixels, the reply carries ["mode" = "interpreter"] plus a warning, so
   degradation is visible but not fatal — PR 2's degradation contract
   applied to native execution. *)
let interpreter_fallback t ~served ~warning ~verify ~return_pixels p inputs =
  Metrics.incr t.metrics "native_exec_fallbacks";
  let t0 = Unix.gettimeofday () in
  let outputs = Ir.Eval.run_outputs p (Ir.Eval.env_of_list inputs) in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Protocol.ok
    (plan_fields served
    @ [
        ( "exec",
          Jsonx.Obj
            [
              ("mode", Jsonx.Str "interpreter");
              ("quarantined", Jsonx.Bool true);
              ("artifact", Jsonx.Str "");
              ("artifact_cached", Jsonx.Bool false);
              ("compile_ms", Jsonx.Num 0.0);
              ("exec_ms", Jsonx.Num ms);
              ("samples_ms", Jsonx.Arr [ Jsonx.Num ms ]);
              ("warnings", Jsonx.Arr [ Jsonx.Str (Diag.to_string warning) ]);
            ] );
        ("outputs", Jsonx.Arr (List.map (output_json ~return_pixels) outputs));
      ]
    (* The fallback *is* the interpreter, so a requested verify is
       trivially exact. *)
    @ if verify then [ ("max_abs_diff", Jsonx.Num 0.0) ] else [])

(* Account a supervised-execution failure: counters, a crash artifact
   for the fuzzer to shrink, and (when the breaker is in play) a strike
   that may quarantine the fingerprint. *)
let record_exec_failure t ~use_breaker ~fp ~seed p (d : Diag.t) =
  (match d.Diag.code with
  | Diag.Exec_timeout -> Metrics.incr t.metrics "native_exec_timeouts"
  | Diag.Exec_crashed -> Metrics.incr t.metrics "native_exec_crashes"
  | Diag.Exec_limit -> Metrics.incr t.metrics "native_exec_limits"
  | _ -> ());
  let toolchain =
    match Toolchain.find () with Ok tc -> Toolchain.id tc | Error _ -> "unknown"
  in
  (match Supervisor.save_crash_artifact ~dir:t.crash_dir ~seed ~toolchain ~diag:d p with
  | Ok _ | Error _ -> ());
  if use_breaker && Supervisor.Breaker.record_failure t.breaker fp d then
    Metrics.incr_gauge t.metrics "quarantined_plans"

let is_supervised_failure (d : Diag.t) =
  match d.Diag.code with
  | Diag.Exec_timeout | Diag.Exec_crashed | Diag.Exec_limit -> true
  | _ -> false

let handle_fuse_exec t ~deadline (e : Protocol.fuse_exec_request) =
  let size =
    match (e.Protocol.width, e.Protocol.height) with
    | Some w, Some h -> Some (w, h)
    | _ -> None
  in
  match plan t ~deadline ?size e.Protocol.fuse with
  | Error d -> Protocol.error d
  | Ok ((r, _, _) as served) -> (
    let p = r.F.Driver.fused in
    let width = p.Ir.Pipeline.width and height = p.Ir.Pipeline.height in
    let rng = Kfuse_util.Rng.create e.Protocol.seed in
    let inputs =
      List.map
        (fun n -> (n, Image.random rng ~width ~height ~lo:0.0 ~hi:1.0))
        p.Ir.Pipeline.inputs
    in
    (* Planning may have eaten the whole request budget (cache miss on a
       slow search): fail typed before paying for a compile. *)
    match Deadline.check deadline with
    | exception Deadline.Expired _ ->
      Metrics.incr t.metrics "requests_timed_out";
      Protocol.error
        (Diag.errorf Diag.Request_timeout
           "request deadline expired after planning, before native execution")
    | () -> (
      let cache_dir =
        Option.map (fun d -> Filename.concat d "native") (Plan_cache.dir t.cache)
      in
      let fp = Fingerprint.exact p in
      let use_breaker = t.exec_sandbox <> Supervisor.Unsandboxed in
      let verdict =
        if use_breaker then Supervisor.Breaker.check t.breaker fp
        else Supervisor.Breaker.Allow
      in
      match verdict with
      | Supervisor.Breaker.Quarantined qd ->
        let warning =
          Diag.warningf Diag.Exec_failed
            "plan quarantined after %d consecutive native failures (last: %s); served by \
             the interpreter"
            (Supervisor.Breaker.threshold t.breaker)
            (Diag.to_string qd)
        in
        interpreter_fallback t ~served ~warning ~verify:e.Protocol.verify
          ~return_pixels:e.Protocol.return_pixels p inputs
      | Supervisor.Breaker.Allow | Supervisor.Breaker.Probe -> (
        let result =
          match t.exec_sandbox with
          | Supervisor.Sandboxed ->
            (* The only sandboxable mode is the supervised subprocess:
               an in-process dlopen cannot be resource-capped or killed.
               A requested dlopen mode is overridden, visibly
               ("sandboxed": true in the reply). *)
            Native.run ~mode:Native.Subprocess ~deadline ~limits:t.exec_limits ?cache_dir
              ~repeat:e.Protocol.repeat p inputs
          | Supervisor.Dlopen_trusted ->
            (* Codegen is trusted in-process; subprocess runs (explicit
               or fallback) still get the supervisor's rlimits. *)
            Native.run ?mode:e.Protocol.exec_mode ~deadline ~limits:t.exec_limits
              ?cache_dir ~repeat:e.Protocol.repeat p inputs
          | Supervisor.Unsandboxed ->
            Native.run ?mode:e.Protocol.exec_mode ~deadline ?cache_dir
              ~repeat:e.Protocol.repeat p inputs
        in
        match result with
        | Error d when is_supervised_failure d ->
          record_exec_failure t ~use_breaker ~fp ~seed:e.Protocol.seed p d;
          Protocol.error d
        | Error d -> Protocol.error d
        | Ok res ->
          if use_breaker && Supervisor.Breaker.record_success t.breaker fp then
            Metrics.decr_gauge t.metrics "quarantined_plans";
          let verify_fields =
            if not e.Protocol.verify then []
            else begin
              (* Both sides sort outputs by name, so positional zip holds. *)
              let reference = Ir.Eval.run_outputs p (Ir.Eval.env_of_list inputs) in
              let diff =
                List.fold_left2
                  (fun acc (_, want) (_, got) -> Float.max acc (Image.max_abs_diff want got))
                  0.0 reference res.Native.outputs
              in
              [ ("max_abs_diff", Jsonx.Num diff) ]
            end
          in
          Protocol.ok
            (plan_fields served
            @ [
                ( "exec",
                  Jsonx.Obj
                    [
                      ("mode", Jsonx.Str (Native.mode_to_string res.Native.mode_used));
                      ( "sandboxed",
                        Jsonx.Bool (t.exec_sandbox = Supervisor.Sandboxed) );
                      ("quarantined", Jsonx.Bool false);
                      ("artifact", Jsonx.Str res.Native.artifact);
                      ("artifact_cached", Jsonx.Bool res.Native.cached);
                      ("compile_ms", Jsonx.Num res.Native.compile_ms);
                      ("exec_ms", Jsonx.Num res.Native.exec_ms);
                      ( "samples_ms",
                        Jsonx.Arr (List.map (fun s -> Jsonx.Num s) res.Native.samples_ms)
                      );
                      ( "warnings",
                        Jsonx.Arr
                          (List.map
                             (fun d -> Jsonx.Str (Diag.to_string d))
                             res.Native.warnings) );
                    ] );
                ( "outputs",
                  Jsonx.Arr
                    (List.map
                       (output_json ~return_pixels:e.Protocol.return_pixels)
                       res.Native.outputs) );
              ]
            @ verify_fields))))

(* ---- streams ---- *)

let streams_active t =
  Mutex.lock t.streams_lock;
  let n = Hashtbl.length t.streams in
  Mutex.unlock t.streams_lock;
  n

(* Exactly-once plan release: the transition to [closed && in_flight = 0]
   is observed under [streams_lock] by exactly one thread — the closer
   (or expirer) when no push is draining, else the last draining push. *)
let stream_done t st =
  Mutex.lock t.streams_lock;
  st.in_flight <- st.in_flight - 1;
  let release_now = st.closed && st.in_flight = 0 in
  Mutex.unlock t.streams_lock;
  if release_now then Option.iter Native.release st.stream_plan

(* Lazy idle expiry, run from every stream/stats/metrics op: no reaper
   thread to leak, and an idle daemon holds no pinned plans forever. *)
let expire_idle_streams t =
  if t.stream_idle_ms > 0.0 then begin
    let now = Unix.gettimeofday () in
    Mutex.lock t.streams_lock;
    let doomed =
      Hashtbl.fold
        (fun id st acc ->
          if st.in_flight = 0 && (now -. st.last_used) *. 1000.0 > t.stream_idle_ms then
            (id, st) :: acc
          else acc)
        t.streams []
    in
    List.iter
      (fun (id, st) ->
        st.closed <- true;
        Hashtbl.remove t.streams id)
      doomed;
    Mutex.unlock t.streams_lock;
    List.iter
      (fun (_, st) ->
        Option.iter Native.release st.stream_plan;
        Metrics.incr t.metrics "streams_expired";
        Metrics.decr_gauge t.metrics "streams_active")
      doomed
  end

(* Orderly shutdown: by the time this runs the workers are joined, so
   every [in_flight] is 0 and every pinned plan can be dropped. *)
let release_all_streams t =
  Mutex.lock t.streams_lock;
  let all = Hashtbl.fold (fun _ st acc -> st :: acc) t.streams [] in
  List.iter (fun st -> st.closed <- true) all;
  Hashtbl.reset t.streams;
  Mutex.unlock t.streams_lock;
  List.iter
    (fun st ->
      if st.in_flight = 0 then Option.iter Native.release st.stream_plan;
      Metrics.decr_gauge t.metrics "streams_active")
    all

(* Pick and pin the native backend for a new stream under the server's
   sandbox policy.  [Ok (None, warns)] is an interpreter-only stream —
   the daemon stays useful on hosts without a C toolchain. *)
let prepare_stream_plan t ~requested ~cache_dir p =
  let prepare mode = Native.prepare ?cache_dir ~mode p in
  let pinned =
    match t.exec_sandbox with
    | Supervisor.Sandboxed ->
      (* Same rule as [fuse_exec]: only the supervised subprocess can be
         resource-capped, so a requested dlopen mode is overridden. *)
      Result.map (fun pl -> (pl, [])) (prepare Native.Subprocess)
    | Supervisor.Dlopen_trusted | Supervisor.Unsandboxed -> (
      match requested with
      | Some m -> Result.map (fun pl -> (pl, [])) (prepare m)
      | None -> (
        match prepare Native.Dlopen with
        | Ok pl -> Ok (pl, [])
        | Error d when d.Diag.code = Diag.Exec_failed ->
          Result.map
            (fun pl -> (pl, [ { d with Diag.severity = Diag.Warning } ]))
            (prepare Native.Subprocess)
        | Error _ as e -> e))
  in
  match pinned with
  | Ok (pl, warns) -> Ok (Some pl, warns)
  | Error d when d.Diag.code = Diag.Toolchain_missing ->
    Ok
      ( None,
        [ Diag.warningf Diag.Toolchain_missing "%s; stream served by the interpreter" d.Diag.message ] )
  | Error _ as e -> e

let warnings_json warns =
  Jsonx.Arr (List.map (fun d -> Jsonx.Str (Diag.to_string d)) warns)

let handle_stream_open t ~deadline (o : Protocol.stream_open_request) =
  expire_idle_streams t;
  let size =
    match (o.Protocol.width, o.Protocol.height) with
    | Some w, Some h -> Some (w, h)
    | _ -> None
  in
  match plan t ~deadline ?size o.Protocol.fuse with
  | Error d -> Protocol.error d
  | Ok ((r, _, _) as served) -> (
    let p = r.F.Driver.fused in
    match Session.create p with
    | Error d -> Protocol.error d
    | Ok session -> (
      match Deadline.check deadline with
      | exception Deadline.Expired _ ->
        Metrics.incr t.metrics "requests_timed_out";
        Protocol.error
          (Diag.errorf Diag.Request_timeout
             "request deadline expired after planning, before the stream compile")
      | () ->
        if streams_active t >= t.max_streams then begin
          Metrics.incr t.metrics "streams_shed";
          Protocol.error
            (Diag.errorf Diag.Overloaded
               "server at --max-streams (%d): close a stream or retry with backoff"
               t.max_streams)
        end
        else begin
          let cache_dir =
            Option.map (fun d -> Filename.concat d "native") (Plan_cache.dir t.cache)
          in
          match prepare_stream_plan t ~requested:o.Protocol.exec_mode ~cache_dir p with
          | Error d -> Protocol.error d
          | Ok (plan_opt, warns) ->
            let id = Printf.sprintf "st-%d" (Atomic.fetch_and_add t.next_stream 1) in
            let st =
              {
                stream_id = id;
                session;
                stream_seed = o.Protocol.seed;
                stream_fp = Fingerprint.exact p;
                stream_plan = plan_opt;
                s_lock = Mutex.create ();
                seq_hint = 0;
                last_used = Unix.gettimeofday ();
                in_flight = 0;
                closed = false;
              }
            in
            Mutex.lock t.streams_lock;
            Hashtbl.replace t.streams id st;
            Mutex.unlock t.streams_lock;
            Metrics.incr t.metrics "streams_opened";
            Metrics.incr_gauge t.metrics "streams_active";
            let mode, artifact, cached, compile_ms =
              match plan_opt with
              | None -> ("interpreter", "", false, 0.0)
              | Some pl ->
                ( Native.mode_to_string (Native.plan_mode pl),
                  Native.plan_artifact pl,
                  Native.plan_cached pl,
                  Native.plan_compile_ms pl )
            in
            Protocol.ok
              (plan_fields served
              @ [
                  ("id", Jsonx.Str id);
                  ( "depth",
                    Jsonx.Num (float_of_int (Session.depth session)) );
                  ("width", Jsonx.Num (float_of_int p.Ir.Pipeline.width));
                  ("height", Jsonx.Num (float_of_int p.Ir.Pipeline.height));
                  ("seed", Jsonx.Num (float_of_int o.Protocol.seed));
                  ( "exec",
                    Jsonx.Obj
                      [
                        ("mode", Jsonx.Str mode);
                        ( "sandboxed",
                          Jsonx.Bool (t.exec_sandbox = Supervisor.Sandboxed) );
                        ("artifact", Jsonx.Str artifact);
                        ("artifact_cached", Jsonx.Bool cached);
                        ("compile_ms", Jsonx.Num compile_ms);
                        ("warnings", warnings_json warns);
                      ] );
                ])
        end))

let unknown_stream id =
  Protocol.error
    (Diag.errorf Diag.Stream_unknown
       "unknown stream %S (never opened, already closed, or idle-expired)" id)

let handle_stream_push t ~deadline (s : Protocol.stream_push_request) =
  expire_idle_streams t;
  let forced_shed =
    match Faults.hit "stream.shed" with
    | () -> false
    | exception Faults.Fault _ -> true
  in
  Mutex.lock t.streams_lock;
  let admitted =
    match Hashtbl.find_opt t.streams s.Protocol.id with
    | None ->
      Mutex.unlock t.streams_lock;
      Error (unknown_stream s.Protocol.id)
    | Some st ->
      if forced_shed || st.in_flight >= t.stream_queue then begin
        Mutex.unlock t.streams_lock;
        (* Shed BEFORE touching temporal state: the frame was not
           processed and the stream did not advance, so the client can
           retry the push verbatim. *)
        Metrics.incr t.metrics "frames_shed";
        Error
          (Protocol.error
             (Diag.errorf Diag.Stream_backpressure
                "stream %S frame queue full (%d in flight of %d): frame dropped, retry \
                 with backoff"
                s.Protocol.id st.in_flight t.stream_queue))
      end
      else begin
        st.in_flight <- st.in_flight + 1;
        Mutex.unlock t.streams_lock;
        Ok st
      end
  in
  match admitted with
  | Error resp -> resp
  | Ok st ->
    Fun.protect ~finally:(fun () -> stream_done t st) @@ fun () ->
    Mutex.lock st.s_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock st.s_lock) @@ fun () ->
    if st.closed then unknown_stream s.Protocol.id
    else begin
      st.last_used <- Unix.gettimeofday ();
      let session = st.session in
      let p = Session.pipeline session in
      let params = Session.params session in
      let seq = Session.frames session in
      let frame =
        Frames.synthetic ~seed:st.stream_seed ~width:p.Ir.Pipeline.width
          ~height:p.Ir.Pipeline.height ~index:seq
      in
      let bindings = Session.bindings session frame in
      let interp () =
        let t0 = Unix.gettimeofday () in
        let outs = Ir.Eval.run_outputs ~params p (Ir.Eval.env_of_list bindings) in
        (outs, (Unix.gettimeofday () -. t0) *. 1000.)
      in
      let use_breaker = t.exec_sandbox <> Supervisor.Unsandboxed in
      let verdict =
        match st.stream_plan with
        | None -> Supervisor.Breaker.Allow
        | Some _ ->
          if use_breaker then Supervisor.Breaker.check t.breaker st.stream_fp
          else Supervisor.Breaker.Allow
      in
      (* (outputs, mode, quarantined, fallback, exec_ms, warnings,
         max_abs_diff when verify). *)
      let outputs, mode, quarantined, fallback, exec_ms, warns, diff =
        match (verdict, st.stream_plan) with
        | _, None ->
          let outs, ms = interp () in
          (outs, "interpreter", false, false, ms, [], Some 0.0)
        | Supervisor.Breaker.Quarantined qd, Some _ ->
          Metrics.incr t.metrics "native_exec_fallbacks";
          let warning =
            Diag.warningf Diag.Exec_failed
              "plan quarantined after %d consecutive native failures (last: %s); frame \
               served by the interpreter"
              (Supervisor.Breaker.threshold t.breaker)
              (Diag.to_string qd)
          in
          let outs, ms = interp () in
          (outs, "interpreter", true, true, ms, [ warning ], Some 0.0)
        | (Supervisor.Breaker.Allow | Supervisor.Breaker.Probe), Some pl -> (
          match
            Native.run_plan ~params ~deadline ~limits:t.exec_limits pl bindings
          with
          | Ok res ->
            if use_breaker && Supervisor.Breaker.record_success t.breaker st.stream_fp
            then Metrics.decr_gauge t.metrics "quarantined_plans";
            let diff =
              if not s.Protocol.verify then None
              else begin
                let reference, _ = interp () in
                Some
                  (List.fold_left2
                     (fun acc (_, want) (_, got) ->
                       Float.max acc (Image.max_abs_diff want got))
                     0.0 reference res.Native.outputs)
              end
            in
            ( res.Native.outputs,
              Native.mode_to_string res.Native.mode_used,
              false, false, res.Native.exec_ms, [], diff )
          | Error d ->
            (* The frame still ships: fall back to the interpreter on
               the SAME bindings, then advance — the stream's pixel
               history is identical to an all-interpreter run, which is
               exactly what the chaos oracle asserts. *)
            if is_supervised_failure d then
              record_exec_failure t ~use_breaker ~fp:st.stream_fp ~seed:st.stream_seed p d;
            Metrics.incr t.metrics "native_exec_fallbacks";
            let outs, ms = interp () in
            (outs, "interpreter", false, true, ms,
             [ { d with Diag.severity = Diag.Warning } ], Some 0.0)
        )
      in
      Session.advance session frame;
      st.seq_hint <- seq + 1;
      st.last_used <- Unix.gettimeofday ();
      Metrics.incr t.metrics "frames_pushed";
      Protocol.ok
        ([
           ("id", Jsonx.Str st.stream_id);
           ("seq", Jsonx.Num (float_of_int seq));
           ("frames", Jsonx.Num (float_of_int (seq + 1)));
           ( "exec",
             Jsonx.Obj
               [
                 ("mode", Jsonx.Str mode);
                 ("sandboxed", Jsonx.Bool (t.exec_sandbox = Supervisor.Sandboxed));
                 ("quarantined", Jsonx.Bool quarantined);
                 ("fallback", Jsonx.Bool fallback);
                 ("exec_ms", Jsonx.Num exec_ms);
                 ("warnings", warnings_json warns);
               ] );
           ( "outputs",
             Jsonx.Arr
               (List.map (output_json ~return_pixels:s.Protocol.return_pixels) outputs)
           );
         ]
        @ match diff with
          | Some d when s.Protocol.verify -> [ ("max_abs_diff", Jsonx.Num d) ]
          | _ -> [])
    end

let handle_stream_close t id =
  expire_idle_streams t;
  Mutex.lock t.streams_lock;
  match Hashtbl.find_opt t.streams id with
  | None ->
    Mutex.unlock t.streams_lock;
    unknown_stream id
  | Some st ->
    Hashtbl.remove t.streams id;
    st.closed <- true;
    let release_now = st.in_flight = 0 in
    Mutex.unlock t.streams_lock;
    (* Wait for a draining push before reading the frame count; the
       plan itself is released by the last push out ([stream_done]). *)
    Mutex.lock st.s_lock;
    let frames = Session.frames st.session in
    Mutex.unlock st.s_lock;
    if release_now then Option.iter Native.release st.stream_plan;
    Metrics.incr t.metrics "streams_closed";
    Metrics.decr_gauge t.metrics "streams_active";
    Protocol.ok
      [ ("id", Jsonx.Str id); ("frames", Jsonx.Num (float_of_int frames)) ]

(* ---- lazy sessions ---- *)

let lazies_active t =
  Mutex.lock t.lazies_lock;
  let n = Hashtbl.length t.lazies in
  Mutex.unlock t.lazies_lock;
  n

(* Same lazy expiry discipline as streams: no reaper thread, run from
   every lazy/stats op.  Nothing to release — builders are plain heap. *)
let expire_idle_lazies t =
  if t.stream_idle_ms > 0.0 then begin
    let now = Unix.gettimeofday () in
    Mutex.lock t.lazies_lock;
    let doomed =
      Hashtbl.fold
        (fun id lz acc ->
          if (now -. lz.lz_last_used) *. 1000.0 > t.stream_idle_ms then (id, lz) :: acc
          else acc)
        t.lazies []
    in
    List.iter (fun (id, _) -> Hashtbl.remove t.lazies id) doomed;
    Mutex.unlock t.lazies_lock;
    List.iter
      (fun _ ->
        Metrics.incr t.metrics "lazy_expired";
        Metrics.decr_gauge t.metrics "lazy_active")
      doomed
  end

let release_all_lazies t =
  Mutex.lock t.lazies_lock;
  let n = Hashtbl.length t.lazies in
  Hashtbl.reset t.lazies;
  Mutex.unlock t.lazies_lock;
  for _ = 1 to n do
    Metrics.decr_gauge t.metrics "lazy_active"
  done

let find_lazy t id =
  Mutex.lock t.lazies_lock;
  let r = Hashtbl.find_opt t.lazies id in
  Mutex.unlock t.lazies_lock;
  r

let unknown_lazy id =
  Protocol.error
    (Diag.errorf Diag.Stream_unknown
       "unknown lazy session %S (never opened, already closed, or idle-expired)" id)

let lazy_state_fields builder =
  [
    ("name", Jsonx.Str (Lz.Lazy_pipeline.name builder));
    ("width", Jsonx.Num (float_of_int (Lz.Lazy_pipeline.width builder)));
    ("height", Jsonx.Num (float_of_int (Lz.Lazy_pipeline.height builder)));
    ("channels", Jsonx.Num (float_of_int (Lz.Lazy_pipeline.channels builder)));
    ("generation", Jsonx.Num (float_of_int (Lz.Lazy_pipeline.generation builder)));
    ( "inputs",
      Jsonx.Arr (List.map (fun i -> Jsonx.Str i) (Lz.Lazy_pipeline.inputs builder)) );
    ( "kernels",
      Jsonx.Arr
        (List.map
           (fun k -> Jsonx.Str k.Ir.Kernel.name)
           (Lz.Lazy_pipeline.kernels builder)) );
  ]

(* Input names reach DSL source later (the [add] command's expression
   scope), so reject anything that is not an identifier at the door. *)
let valid_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let handle_lazy_open t (o : Protocol.lazy_open_request) =
  expire_idle_lazies t;
  let default = F.Config.default in
  let config =
    {
      default with
      F.Config.c_mshared =
        Option.value ~default:default.F.Config.c_mshared o.Protocol.c_mshared;
      gamma = Option.value ~default:default.F.Config.gamma o.Protocol.gamma;
      tg = Option.value ~default:default.F.Config.tg o.Protocol.tg;
    }
  in
  match F.Config.validate_result config with
  | Error d -> Protocol.error d
  | Ok () -> (
    let seeded =
      match (o.Protocol.app, o.Protocol.source) with
      | None, None -> (
        (* The codec guarantees width/height for an empty builder. *)
        let width = Option.get o.Protocol.width
        and height = Option.get o.Protocol.height in
        let rec dup = function
          | [] -> None
          | x :: rest -> if List.mem x rest then Some x else dup rest
        in
        match
          ( List.find_opt (fun i -> not (valid_ident i)) o.Protocol.inputs,
            dup o.Protocol.inputs )
        with
        | Some bad, _ ->
          Error (Diag.errorf Diag.Elab_error "input %S is not an identifier" bad)
        | None, Some d ->
          Error (Diag.errorf Diag.Duplicate_name "duplicate input %S" d)
        | None, None ->
          Ok
            (Lz.Lazy_pipeline.create
               ~channels:(Option.value ~default:1 o.Protocol.channels)
               ~inputs:o.Protocol.inputs ~width ~height config))
      | _ -> (
        let fr =
          {
            Protocol.app = o.Protocol.app;
            source = o.Protocol.source;
            strategy = F.Driver.Mincut;
            c_mshared = None;
            gamma = None;
            tg = None;
            optimize = false;
            inline = false;
            strict = false;
            budget_ms = None;
            no_cache = false;
          }
        in
        let size =
          match (o.Protocol.width, o.Protocol.height) with
          | Some w, Some h -> Some (w, h)
          | _ -> None
        in
        match Result.bind (load_pipeline ?size fr) validated with
        | Error _ as e -> e
        | Ok p -> Ok (Lz.Lazy_pipeline.of_pipeline config p))
    in
    match seeded with
    | Error d -> Protocol.error d
    | Ok builder ->
      if lazies_active t >= t.max_streams then begin
        Metrics.incr t.metrics "lazy_shed";
        Protocol.error
          (Diag.errorf Diag.Overloaded
             "server at --max-streams (%d) lazy sessions: close one or retry with backoff"
             t.max_streams)
      end
      else begin
        let id = Printf.sprintf "lz-%d" (Atomic.fetch_and_add t.next_lazy 1) in
        let lz =
          {
            lz_id = id;
            builder;
            lz_lock = Mutex.create ();
            lz_last_used = Unix.gettimeofday ();
            lz_flushes = 0;
          }
        in
        Mutex.lock t.lazies_lock;
        Hashtbl.replace t.lazies id lz;
        Mutex.unlock t.lazies_lock;
        Metrics.incr t.metrics "lazy_opened";
        Metrics.incr_gauge t.metrics "lazy_active";
        Protocol.ok (("id", Jsonx.Str id) :: lazy_state_fields builder)
      end)

let handle_lazy_edit t (e : Protocol.lazy_edit_request) =
  expire_idle_lazies t;
  match find_lazy t e.Protocol.id with
  | None -> unknown_lazy e.Protocol.id
  | Some lz -> (
    Mutex.lock lz.lz_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lz.lz_lock) @@ fun () ->
    lz.lz_last_used <- Unix.gettimeofday ();
    let applied =
      Result.bind
        (Lz.Command.parse lz.builder e.Protocol.command)
        (Lz.Command.apply lz.builder)
    in
    match applied with
    | Error d -> Protocol.error d
    | Ok description ->
      Metrics.incr t.metrics "lazy_edits";
      Protocol.ok
        (("id", Jsonx.Str lz.lz_id)
        :: ("applied", Jsonx.Str description)
        :: lazy_state_fields lz.builder))

let lazy_plan_fields ~id ~scratch ~replan_ms (pl : Lz.Replan.plan) =
  let s = pl.Lz.Replan.stats in
  let int n = Jsonx.Num (float_of_int n) in
  [
    ("id", Jsonx.Str id);
    ("scratch", Jsonx.Bool scratch);
    ("kernels_in", int (Ir.Pipeline.num_kernels pl.Lz.Replan.pipeline));
    ("kernels_out", int (Ir.Pipeline.num_kernels pl.Lz.Replan.fused));
    ("objective", Jsonx.Num pl.Lz.Replan.objective);
    ("fingerprint", Jsonx.Str pl.Lz.Replan.fingerprint);
    ( "partition",
      Jsonx.Arr
        (List.map
           (fun b -> Jsonx.Arr (block_names pl.Lz.Replan.pipeline b))
           pl.Lz.Replan.partition) );
    ( "replan",
      Jsonx.Obj
        [
          ("blocks_reused", int s.Lz.Replan.blocks_reused);
          ("blocks_replanned", int s.Lz.Replan.blocks_replanned);
          ("edges_reused", int s.Lz.Replan.edges_reused);
          ("edges_rescored", int s.Lz.Replan.edges_rescored);
          ("fell_back", Jsonx.Bool s.Lz.Replan.fell_back);
          ("replan_ms", Jsonx.Num replan_ms);
        ] );
  ]

let handle_lazy_flush t (f : Protocol.lazy_flush_request) =
  expire_idle_lazies t;
  match find_lazy t f.Protocol.id with
  | None -> unknown_lazy f.Protocol.id
  | Some lz -> (
    Mutex.lock lz.lz_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lz.lz_lock) @@ fun () ->
    lz.lz_last_used <- Unix.gettimeofday ();
    let t0 = Unix.gettimeofday () in
    let planned =
      if f.Protocol.scratch then Lz.Lazy_pipeline.flush_scratch ~pool:t.pool lz.builder
      else Lz.Lazy_pipeline.flush ~pool:t.pool lz.builder
    in
    match planned with
    | Error d -> Protocol.error d
    | Ok plan ->
      lz.lz_flushes <- lz.lz_flushes + 1;
      Metrics.incr t.metrics "lazy_flushes";
      Protocol.ok
        (lazy_plan_fields ~id:lz.lz_id ~scratch:f.Protocol.scratch
           ~replan_ms:((Unix.gettimeofday () -. t0) *. 1000.)
           plan))

let handle_lazy_close t id =
  expire_idle_lazies t;
  Mutex.lock t.lazies_lock;
  match Hashtbl.find_opt t.lazies id with
  | None ->
    Mutex.unlock t.lazies_lock;
    unknown_lazy id
  | Some lz ->
    Hashtbl.remove t.lazies id;
    Mutex.unlock t.lazies_lock;
    Metrics.incr t.metrics "lazy_closed";
    Metrics.decr_gauge t.metrics "lazy_active";
    Protocol.ok
      [ ("id", Jsonx.Str id); ("flushes", Jsonx.Num (float_of_int lz.lz_flushes)) ]

let stats_json t =
  expire_idle_streams t;
  expire_idle_lazies t;
  let c = Plan_cache.stats t.cache in
  let latency_json op =
    match Metrics.latency t.metrics op with
    | None -> Jsonx.Null
    | Some q ->
      Jsonx.Obj
        [
          ("samples", Jsonx.Num (float_of_int q.Kfuse_util.Stats.samples));
          ("p50_ms", Jsonx.Num q.Kfuse_util.Stats.p50);
          ("p90_ms", Jsonx.Num q.Kfuse_util.Stats.p90);
          ("p95_ms", Jsonx.Num q.Kfuse_util.Stats.p95);
          ("p99_ms", Jsonx.Num q.Kfuse_util.Stats.p99);
          ("max_ms", Jsonx.Num q.Kfuse_util.Stats.q_max);
          ("mean_ms", Jsonx.Num q.Kfuse_util.Stats.q_mean);
        ]
  in
  let requests_json op =
    let total, errors = Metrics.requests t.metrics op in
    Jsonx.Obj
      [
        ("total", Jsonx.Num (float_of_int total));
        ("errors", Jsonx.Num (float_of_int errors));
        ("latency", latency_json op);
      ]
  in
  let count name = Jsonx.Num (float_of_int (Metrics.counter t.metrics name)) in
  Protocol.ok
    [
      ("uptime_s", Jsonx.Num (Unix.gettimeofday () -. t.started_at));
      ( "cache",
        Jsonx.Obj
          [
            ("entries", Jsonx.Num (float_of_int c.Plan_cache.entries));
            ("capacity", Jsonx.Num (float_of_int c.Plan_cache.capacity));
            ("hits", Jsonx.Num (float_of_int c.Plan_cache.hits));
            ("disk_hits", Jsonx.Num (float_of_int c.Plan_cache.disk_hits));
            ("misses", Jsonx.Num (float_of_int c.Plan_cache.misses));
            ("iso_misses", Jsonx.Num (float_of_int c.Plan_cache.iso_misses));
            ("evictions", Jsonx.Num (float_of_int c.Plan_cache.evictions));
            ("stores", Jsonx.Num (float_of_int c.Plan_cache.stores));
            ("disk_errors", Jsonx.Num (float_of_int c.Plan_cache.disk_errors));
            ("hit_rate", Jsonx.Num (Plan_cache.hit_rate c));
          ] );
      ( "requests",
        Jsonx.Obj (List.map (fun op -> (op, requests_json op)) (Metrics.ops t.metrics)) );
      ( "connections",
        Jsonx.Obj
          [
            ("accepted", count "connections_accepted");
            ("dropped", count "connections_dropped");
            ( "active",
              Jsonx.Num (float_of_int (Metrics.gauge t.metrics "connections_active")) );
            ("shed", count "requests_shed");
            ("timed_out", count "requests_timed_out");
          ] );
      ( "limits",
        Jsonx.Obj
          [
            ("max_conns", Jsonx.Num (float_of_int t.max_conns));
            ("queue", Jsonx.Num (float_of_int t.queue_bound));
            ("request_timeout_ms", Jsonx.Num t.request_timeout_ms);
            ("drain_timeout_ms", Jsonx.Num t.drain_timeout_ms);
          ] );
      ( "native_exec",
        Jsonx.Obj
          [
            ("sandbox", Jsonx.Str (Supervisor.policy_to_string t.exec_sandbox));
            ("crashes", count "native_exec_crashes");
            ("timeouts", count "native_exec_timeouts");
            ("limit_hits", count "native_exec_limits");
            ("fallbacks", count "native_exec_fallbacks");
            ( "quarantined",
              Jsonx.Num (float_of_int (Metrics.gauge t.metrics "quarantined_plans")) );
            ("crash_dir", Jsonx.Str t.crash_dir);
          ] );
      ( "streams",
        Jsonx.Obj
          [
            ( "active",
              Jsonx.Num (float_of_int (Metrics.gauge t.metrics "streams_active")) );
            ("opened", count "streams_opened");
            ("closed", count "streams_closed");
            ("expired", count "streams_expired");
            ("shed", count "streams_shed");
            ("frames_pushed", count "frames_pushed");
            ("frames_shed", count "frames_shed");
            ("max_streams", Jsonx.Num (float_of_int t.max_streams));
            ("stream_queue", Jsonx.Num (float_of_int t.stream_queue));
            ("stream_idle_ms", Jsonx.Num t.stream_idle_ms);
          ] );
      ( "lazy",
        Jsonx.Obj
          [
            ( "active",
              Jsonx.Num (float_of_int (Metrics.gauge t.metrics "lazy_active")) );
            ("opened", count "lazy_opened");
            ("closed", count "lazy_closed");
            ("expired", count "lazy_expired");
            ("shed", count "lazy_shed");
            ("edits", count "lazy_edits");
            ("flushes", count "lazy_flushes");
          ] );
    ]

(* [dispatch] never raises: a failing handler becomes an error response
   (counted per-op), keeping the connection and the server alive. *)
let dispatch t ~deadline v =
  match Protocol.request_of_json v with
  | Error d -> ("invalid", Protocol.error d, false)
  | Ok req -> (
    let op =
      match req with
      | Protocol.Fuse _ -> "fuse"
      | Protocol.Fuse_exec _ -> "fuse_exec"
      | Protocol.Stream_open _ -> "stream_open"
      | Protocol.Stream_push _ -> "stream_push"
      | Protocol.Stream_close _ -> "stream_close"
      | Protocol.Lazy_open _ -> "lazy_open"
      | Protocol.Lazy_edit _ -> "lazy_edit"
      | Protocol.Lazy_flush _ -> "lazy_flush"
      | Protocol.Lazy_close _ -> "lazy_close"
      | Protocol.Stats -> "stats"
      | Protocol.Metrics -> "metrics"
      | Protocol.Ping -> "ping"
      | Protocol.Shutdown -> "shutdown"
    in
    match req with
    | Protocol.Ping -> (op, Protocol.ok [ ("pong", Jsonx.Bool true) ], false)
    | Protocol.Shutdown -> (op, Protocol.ok [ ("stopping", Jsonx.Bool true) ], true)
    | Protocol.Stats -> (op, stats_json t, false)
    | Protocol.Metrics ->
      let text =
        Metrics.render t.metrics ~cache:(Plan_cache.stats t.cache)
          ~uptime_s:(Unix.gettimeofday () -. t.started_at)
      in
      (op, Protocol.ok [ ("text", Jsonx.Str text) ], false)
    | Protocol.Fuse f -> (
      match handle_fuse t ~deadline f with
      | resp -> (op, resp, false)
      | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
      | exception exn -> (op, Protocol.error (Diag.of_exn exn), false))
    | Protocol.Fuse_exec e -> (
      match handle_fuse_exec t ~deadline e with
      | resp -> (op, resp, false)
      | exception ((Out_of_memory | Stack_overflow) as ex) -> raise ex
      | exception exn -> (op, Protocol.error (Diag.of_exn exn), false))
    | Protocol.Stream_open o -> (
      match handle_stream_open t ~deadline o with
      | resp -> (op, resp, false)
      | exception ((Out_of_memory | Stack_overflow) as ex) -> raise ex
      | exception exn -> (op, Protocol.error (Diag.of_exn exn), false))
    | Protocol.Stream_push s -> (
      match handle_stream_push t ~deadline s with
      | resp -> (op, resp, false)
      | exception ((Out_of_memory | Stack_overflow) as ex) -> raise ex
      | exception exn -> (op, Protocol.error (Diag.of_exn exn), false))
    | Protocol.Stream_close id -> (
      match handle_stream_close t id with
      | resp -> (op, resp, false)
      | exception ((Out_of_memory | Stack_overflow) as ex) -> raise ex
      | exception exn -> (op, Protocol.error (Diag.of_exn exn), false))
    | Protocol.Lazy_open o -> (
      match handle_lazy_open t o with
      | resp -> (op, resp, false)
      | exception ((Out_of_memory | Stack_overflow) as ex) -> raise ex
      | exception exn -> (op, Protocol.error (Diag.of_exn exn), false))
    | Protocol.Lazy_edit e -> (
      match handle_lazy_edit t e with
      | resp -> (op, resp, false)
      | exception ((Out_of_memory | Stack_overflow) as ex) -> raise ex
      | exception exn -> (op, Protocol.error (Diag.of_exn exn), false))
    | Protocol.Lazy_flush f -> (
      match handle_lazy_flush t f with
      | resp -> (op, resp, false)
      | exception ((Out_of_memory | Stack_overflow) as ex) -> raise ex
      | exception exn -> (op, Protocol.error (Diag.of_exn exn), false))
    | Protocol.Lazy_close id -> (
      match handle_lazy_close t id with
      | resp -> (op, resp, false)
      | exception ((Out_of_memory | Stack_overflow) as ex) -> raise ex
      | exception exn -> (op, Protocol.error (Diag.of_exn exn), false)))

let is_ok resp = match Jsonx.mem_str "status" resp with Some "ok" -> true | _ -> false

let initiate_stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Wake idle workers so they drain the queue and exit. *)
    Mutex.lock t.q_lock;
    Condition.broadcast t.q_cond;
    Mutex.unlock t.q_lock;
    (* Wake the accept loop: on Linux, closing a listener from another
       thread does not interrupt a blocked accept(2), so poke it with a
       throwaway connection.  The loop rechecks [stopping] after every
       accept and owns closing the listener. *)
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
      (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path) with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  end

let signal_stop t = Atomic.set t.stop_requested true

let request_deadline t =
  if t.request_timeout_ms > 0.0 then Deadline.after_ms t.request_timeout_ms
  else Deadline.none

(* One reply, chaos points included.  Returns [true] when the connection
   is still good for another request; every failure mode frees the slot
   rather than wedging it. *)
let send_reply t fd ~deadline resp =
  match Faults.hit "proto.drop_reply" with
  | exception Faults.Fault _ ->
    (* Chaos: the reply vanishes and the connection drops; the client
       must time out or see a clean close. *)
    false
  | () -> (
    (match Faults.hit "proto.slow_write" with
    | () -> ()
    | exception Faults.Fault _ -> Thread.delay 0.05);
    match Faults.hit "proto.torn_frame" with
    | exception Faults.Fault _ ->
      (* Chaos: half a frame, then the connection drops; the client must
         surface a typed mid-frame error. *)
      (try Protocol.send_torn fd resp with _ -> ());
      false
    | () -> (
      match Protocol.send ~deadline fd resp with
      | () -> true
      | exception Deadline.Expired _ ->
        Metrics.incr t.metrics "requests_timed_out";
        false
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Metrics.incr t.metrics "requests_timed_out";
        false
      | exception Diag.Fatal d ->
        (* The response overran [max_frame]; nothing was written, so the
           slot is still good: answer with the typed error instead. *)
        (match Protocol.send ~deadline fd (Protocol.error d) with
        | () -> true
        | exception _ -> false)
      | exception _ -> false))

let handle_conn t fd =
  let rec loop () =
    match Protocol.recv fd with
    | Ok None -> ()
    | Error d when d.Diag.code = Diag.Request_timeout ->
      (* A slow-loris (or idle) peer ran out the receive timeout: free
         the slot with a typed reply if the pipe still works. *)
      Metrics.incr t.metrics "requests_timed_out";
      (try Protocol.send fd (Protocol.error d) with _ -> ())
    | Error d ->
      (* Framing is broken; answer if the pipe still works, then
         drop the connection. *)
      Metrics.incr t.metrics "protocol_errors";
      (try Protocol.send fd (Protocol.error d) with _ -> ())
    | Ok (Some v) ->
      let deadline = request_deadline t in
      let t0 = Unix.gettimeofday () in
      let op, resp, stop = dispatch t ~deadline v in
      Metrics.observe t.metrics ~op ~ok:(is_ok resp) ((Unix.gettimeofday () -. t0) *. 1000.);
      let keep = send_reply t fd ~deadline resp in
      if stop then initiate_stop t
      else if keep && not (Atomic.get t.stopping) then loop ()
  in
  loop ()

(* ---- admission ---- *)

let set_conn_timeouts t fd =
  if t.request_timeout_ms > 0.0 then begin
    let s = t.request_timeout_ms /. 1000.0 in
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s with
    | Unix.Unix_error _ | Invalid_argument _ -> ());
    try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s with
    | Unix.Unix_error _ | Invalid_argument _ -> ()
  end

let shed t fd ~busy ~queued =
  Metrics.incr t.metrics "requests_shed";
  let d =
    Diag.errorf Diag.Overloaded
      "server overloaded (%d connections in flight, %d queued of %d): retry with backoff"
      busy queued t.queue_bound
  in
  (* A one-frame reply fits the socket buffer; SO_SNDTIMEO bounds a
     pathological peer so the accept thread cannot be pinned. *)
  (try Protocol.send fd (Protocol.error d) with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let admit t fd =
  let forced =
    match Faults.hit "service.shed" with
    | () -> false
    | exception Faults.Fault _ -> true
  in
  Mutex.lock t.q_lock;
  let busy = t.busy and queued = Queue.length t.queue in
  (* Admit while a worker is free to pick the connection up at once, or
     while the bounded queue has room; shed otherwise (or when the
     ["service.shed"] chaos point fires). *)
  if (not forced) && (busy < t.max_conns || queued < t.queue_bound) then begin
    Queue.push fd t.queue;
    Condition.signal t.q_cond;
    Mutex.unlock t.q_lock
  end
  else begin
    Mutex.unlock t.q_lock;
    shed t fd ~busy ~queued
  end

let rec worker_loop t slot =
  Mutex.lock t.q_lock;
  while Queue.is_empty t.queue && not (Atomic.get t.stopping) do
    Condition.wait t.q_cond t.q_lock
  done;
  match Queue.take_opt t.queue with
  | None ->
    (* Stopping with a drained queue. *)
    Mutex.unlock t.q_lock
  | Some fd ->
    t.busy <- t.busy + 1;
    t.active.(slot) <- Some fd;
    Mutex.unlock t.q_lock;
    Metrics.incr_gauge t.metrics "connections_active";
    (match handle_conn t fd with
    | () -> ()
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception _ -> ());
    Metrics.decr_gauge t.metrics "connections_active";
    Mutex.lock t.q_lock;
    t.busy <- t.busy - 1;
    t.active.(slot) <- None;
    Mutex.unlock t.q_lock;
    (* Close after clearing the slot, under which a forced drain may
       have issued a shutdown: the fd stays valid until this close. *)
    (try Unix.close fd with Unix.Unix_error _ -> ());
    worker_loop t slot

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else begin
      match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _ when Atomic.get t.stopping ->
        (* The wake-up poke from [initiate_stop], or a client racing the
           shutdown: either way, the server is closing. *)
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | fd, _ -> (
        match Faults.hit "service.accept" with
        | () ->
          Metrics.incr t.metrics "connections_accepted";
          set_conn_timeouts t fd;
          admit t fd;
          loop ()
        | exception Faults.Fault _ ->
          (* Degrade: this connection is lost, the server is not. *)
          Metrics.incr t.metrics "connections_dropped";
          (try Unix.close fd with Unix.Unix_error _ -> ());
          loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ when Atomic.get t.stopping -> ()
    end
  in
  loop ();
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

(* ---- lifecycle ---- *)

let claim_socket path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    (* A socket file exists: stale (no listener) or live (refuse). *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
      Unix.close probe;
      Error (Diag.errorf Diag.Service_error "another kfused is already serving on %s" path)
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      (try Unix.close probe with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close probe with Unix.Unix_error _ -> ());
      Error (Diag.errorf ~file:path Diag.Io_error "cannot probe socket: %s" (Unix.error_message e)))
  | _ -> Error (Diag.errorf ~file:path Diag.Io_error "exists and is not a socket")

let default_crash_dir () = Filename.concat (Plan_cache.default_dir ()) "crash-corpus"

let start ~socket:path ~cache ~pool ?budget_ms ?(max_conns = 16) ?(queue = 64)
    ?(request_timeout_ms = 30_000.0) ?(drain_timeout_ms = 5_000.0)
    ?(exec_sandbox = Supervisor.Sandboxed) ?(exec_limits = Supervisor.default_limits)
    ?crash_dir ?(breaker_threshold = 3) ?(breaker_cooldown_ms = 60_000.0)
    ?(max_streams = 64) ?(stream_queue = 4) ?(stream_idle_ms = 60_000.0) () =
  if max_conns < 1 then
    Error (Diag.errorf Diag.Config_invalid "max_conns must be >= 1 (got %d)" max_conns)
  else if queue < 0 then
    Error (Diag.errorf Diag.Config_invalid "queue must be >= 0 (got %d)" queue)
  else if max_streams < 1 then
    Error (Diag.errorf Diag.Config_invalid "max_streams must be >= 1 (got %d)" max_streams)
  else if stream_queue < 1 then
    Error (Diag.errorf Diag.Config_invalid "stream_queue must be >= 1 (got %d)" stream_queue)
  else if breaker_threshold < 1 then
    Error
      (Diag.errorf Diag.Config_invalid "breaker_threshold must be >= 1 (got %d)"
         breaker_threshold)
  else
    match claim_socket path with
    | Error _ as e -> e
    | Ok () -> (
      match
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.bind fd (Unix.ADDR_UNIX path);
           Unix.listen fd 64
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd
      with
      | exception Unix.Unix_error (e, _, _) ->
        Error (Diag.errorf ~file:path Diag.Io_error "cannot listen: %s" (Unix.error_message e))
      | listen_fd ->
        let metrics = Metrics.create () in
        List.iter (Metrics.touch metrics)
          [
            "connections_accepted"; "connections_dropped"; "requests_shed";
            "requests_timed_out"; "protocol_errors"; "native_exec_crashes";
            "native_exec_timeouts"; "native_exec_limits"; "native_exec_fallbacks";
            "streams_opened"; "streams_closed"; "streams_expired"; "streams_shed";
            "frames_pushed"; "frames_shed"; "lazy_opened"; "lazy_closed";
            "lazy_expired"; "lazy_shed"; "lazy_edits"; "lazy_flushes";
          ];
        Metrics.adjust_gauge metrics "connections_active" 0;
        Metrics.adjust_gauge metrics "quarantined_plans" 0;
        Metrics.adjust_gauge metrics "streams_active" 0;
        Metrics.adjust_gauge metrics "lazy_active" 0;
        let t =
          {
            socket_path = path;
            listen_fd;
            cache;
            pool;
            default_budget_ms = budget_ms;
            request_timeout_ms;
            drain_timeout_ms;
            metrics;
            exec_sandbox;
            exec_limits;
            crash_dir =
              (match crash_dir with Some d -> d | None -> default_crash_dir ());
            breaker =
              Supervisor.Breaker.create ~threshold:breaker_threshold
                ~cooldown_ms:breaker_cooldown_ms ();
            started_at = Unix.gettimeofday ();
            stopping = Atomic.make false;
            stop_requested = Atomic.make false;
            accept_thread = None;
            workers = [||];
            max_conns;
            queue_bound = queue;
            q_lock = Mutex.create ();
            q_cond = Condition.create ();
            queue = Queue.create ();
            busy = 0;
            active = Array.make max_conns None;
            streams_lock = Mutex.create ();
            streams = Hashtbl.create 16;
            next_stream = Atomic.make 0;
            max_streams;
            stream_queue;
            stream_idle_ms;
            lazies_lock = Mutex.create ();
            lazies = Hashtbl.create 16;
            next_lazy = Atomic.make 0;
          }
        in
        t.workers <- Array.init max_conns (fun slot -> Thread.create (worker_loop t) slot);
        t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
        Ok t)

let wait t =
  (* Poll instead of parking in [Thread.join] right away: every blocked
     thread of this server sits in an uninterruptible C call (join,
     cond-wait, accept), so a process signal is only guaranteed to run
     its OCaml handler once some thread reaches a poll point — which
     this loop is.  The handler itself ([signal_stop]) just flips an
     atomic; the stop work that takes locks happens here, in a normal
     thread context. *)
  while not (Atomic.get t.stopping || Atomic.get t.stop_requested) do
    Thread.delay 0.02
  done;
  initiate_stop t;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (* The listener is closed; workers finish in-flight requests and drain
     the admission queue.  Past the drain deadline, force the issue:
     shut down every connection still being served or queued, so the
     handlers' blocked reads and writes fail promptly and the workers
     can be joined.  Zero leaked handler threads, bounded shutdown. *)
  let deadline = Deadline.after_ms t.drain_timeout_ms in
  let forced = ref false in
  let rec drain () =
    Mutex.lock t.q_lock;
    let pending = t.busy + Queue.length t.queue in
    if pending > 0 && (not !forced) && Deadline.expired deadline then begin
      forced := true;
      Array.iter
        (function
          | Some fd -> (
            try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
          | None -> ())
        t.active;
      Queue.iter
        (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.queue
    end;
    Mutex.unlock t.q_lock;
    if pending > 0 then begin
      Thread.delay 0.005;
      drain ()
    end
  in
  drain ();
  Array.iter Thread.join t.workers;
  (* Workers are joined, so no push is in flight: every stream's pinned
     plan can be released before the process exits. *)
  release_all_streams t;
  release_all_lazies t;
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ())

let stop t =
  initiate_stop t;
  wait t
