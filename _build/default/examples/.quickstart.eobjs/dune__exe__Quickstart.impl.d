examples/quickstart.ml: Format Kfuse_fusion Kfuse_gpu Kfuse_image Kfuse_ir Kfuse_util List
