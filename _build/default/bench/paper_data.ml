(* Reference numbers transcribed from the paper, used for side-by-side
   reporting.  Device order everywhere: GTX745, GTX680, K20c. *)

let device_names = [ "GTX745"; "GTX680"; "K20c" ]
let app_names = [ "harris"; "sobel"; "unsharp"; "shitomasi"; "enhance"; "night" ]

(* Table I: optimized fusion over baseline. *)
let table1_opt_over_base =
  [
    ("harris", [ 1.145; 1.344; 1.146 ]);
    ("sobel", [ 1.108; 1.377; 1.048 ]);
    ("unsharp", [ 2.025; 3.438; 2.304 ]);
    ("shitomasi", [ 1.138; 1.357; 1.149 ]);
    ("enhance", [ 1.760; 1.920; 1.809 ]);
    ("night", [ 1.000; 1.020; 1.000 ]);
  ]

(* Table I: basic fusion (prior work [12]) over baseline. *)
let table1_basic_over_base =
  [
    ("harris", [ 1.044; 1.266; 1.094 ]);
    ("sobel", [ 1.002; 0.987; 1.002 ]);
    ("unsharp", [ 1.007; 1.001; 0.999 ]);
    ("shitomasi", [ 1.046; 1.287; 1.099 ]);
    ("enhance", [ 1.413; 1.785; 1.490 ]);
    ("night", [ 1.001; 1.020; 1.000 ]);
  ]

(* Table I: optimized over basic. *)
let table1_opt_over_basic =
  [
    ("harris", [ 1.097; 1.061; 1.047 ]);
    ("sobel", [ 1.106; 1.394; 1.046 ]);
    ("unsharp", [ 2.011; 3.435; 2.304 ]);
    ("shitomasi", [ 1.088; 1.055; 1.046 ]);
    ("enhance", [ 1.245; 1.076; 1.214 ]);
    ("night", [ 0.999; 1.000; 1.000 ]);
  ]

(* Table II: geometric means across the three GPUs. *)
let table2 =
  [
    (* app, optimized/base, basic/base, optimized/basic *)
    ("harris", (1.208, 1.131, 1.068));
    ("sobel", (1.169, 1.000, 1.173));
    ("unsharp", (2.522, 1.002, 2.516));
    ("shitomasi", (1.211, 1.139, 1.063));
    ("enhance", (1.829, 1.555, 1.176));
    ("night", (1.007, 1.007, 1.000));
  ]

(* Figure 3: edge weights of the Harris worked example. *)
let fig3_weights = [ (("sx", "gx"), 328.0); (("sy", "gy"), 328.0); (("sxy", "gxy"), 256.0) ]

let fig3_partition =
  [ [ "dx" ]; [ "dy" ]; [ "sx"; "gx" ]; [ "sy"; "gy" ]; [ "sxy"; "gxy" ]; [ "hc" ] ]

(* Figure 4: double unnormalized-Gaussian convolution values.  The naive
   value printed in the paper is 648, but convolving the intermediate
   matrix the paper itself shows yields 684 (digit transposition). *)
let fig4_interior = 992.0
let fig4_correct_topleft = 763.0
let fig4_naive_topleft_recomputed = 684.0
let fig4_naive_topleft_printed = 648.0
