(** The failing-case corpus: persisted minimal reproducers.

    Every failure the fuzzer finds is written to a directory as DSL
    text (via {!Kfuse_dsl.Unparse}) with a comment header recording the
    provenance — seed, case index, the oracle that failed and why — so
    a failure survives the process and replays from a file alone.  The
    runner replays the whole corpus {e before} generating new cases:
    once a bug is found, it stays found until fixed.

    File names are content-addressed (a prefix of the structural
    fingerprint), so re-finding the same minimal pipeline under a
    different seed does not grow the corpus. *)

type entry = {
  path : string;
  seed : int option;
  index : int option;
  oracle : string option;  (** oracle name recorded at save time *)
  detail : string option;
  pipeline : Kfuse_ir.Pipeline.t;
}

(** [normalize p] rewrites every zero-offset tap to the [Clamp] border
    and folds negated constant literals ([Neg (Const c)] to
    [Const (-c)]).  A zero-offset access never leaves the image, so its
    border mode is unobservable and the DSL renders it bare; a negated
    literal prints identically to a negative one and parses to the
    latter — [normalize] is the canonical representative of what
    survives a DSL round-trip, and the form under which corpus entries
    should be compared for identity. *)
val normalize : Kfuse_ir.Pipeline.t -> Kfuse_ir.Pipeline.t

(** [save ~dir ?seed ?index ~oracle ~detail p] unparses [p] into
    [dir/<structural-prefix>.pipe] (creating [dir] if needed) and
    returns the path, or [Error reason] when [p] has no DSL rendering.
    Saving an already-present entry is idempotent. *)
val save :
  dir:string ->
  ?seed:int ->
  ?index:int ->
  oracle:string ->
  detail:string ->
  Kfuse_ir.Pipeline.t ->
  (string, string) result

(** [load_file path] parses one corpus entry back. *)
val load_file : string -> (entry, string) result

(** [load_dir dir] loads every [*.pipe] entry, sorted by file name;
    unreadable entries come back in the error list rather than being
    silently skipped.  A missing directory is an empty corpus. *)
val load_dir : string -> entry list * (string * string) list
