lib/graph/partition.mli: Digraph Format Kfuse_util
