lib/graph/wgraph.mli: Digraph Format Kfuse_util
