module Stats = Kfuse_util.Stats
module Rng = Kfuse_util.Rng

type measurement = {
  device : Device.t;
  quality : Perf_model.quality;
  breakdown : Perf_model.kernel_time list;
  model_ms : float;
  samples : float array;
  summary : Stats.summary;
}

let default_seed (d : Device.t) (p : Kfuse_ir.Pipeline.t) quality =
  Hashtbl.hash (d.Device.name, p.Kfuse_ir.Pipeline.name, Perf_model.quality_to_string quality)

let measure ?(params = Perf_model.default_params) ?(runs = 500) ?seed
    ?(pool = Kfuse_util.Pool.serial) d ~quality ~fused_kernels pipeline =
  if runs <= 0 then invalid_arg "Sim.measure: runs must be positive";
  let seed = match seed with Some s -> s | None -> default_seed d pipeline quality in
  let breakdown, model_ms =
    Perf_model.pipeline_time ~params d ~quality ~fused_kernels pipeline
  in
  (* One generator per run, split serially from the master seed: run [i]
     draws the same numbers whether the sampling loop below executes on
     one domain or many. *)
  let master = Rng.create seed in
  let streams = Array.init runs (fun _ -> Rng.split master) in
  let samples = Array.make runs 0.0 in
  Kfuse_util.Pool.run pool ~chunk:64 ~n:runs (fun i ->
      (* Symmetric 0.6% jitter plus a one-sided exponential-ish tail of
         about 1.5% of the runtime: medians stay at the model value
         while maxima poke upward, giving Figure 6's whisker shape. *)
      Kfuse_util.Faults.hit "sim.sample";
      let rng = streams.(i) in
      let jitter = 1.0 +. (0.006 *. Rng.gaussian rng) in
      let tail = 0.015 *. model_ms *. Float.abs (Rng.gaussian rng) in
      samples.(i) <- Float.max 0.0 ((model_ms *. jitter) +. tail));
  { device = d; quality; breakdown; model_ms; samples; summary = Stats.summarize samples }

let speedup a b = a.summary.Stats.median /. b.summary.Stats.median
