(** Backend-shared lowering machinery.

    The per-pixel expression lowering is identical for the CUDA and CPU
    backends — only the kernel harness (thread indexing vs. loops) and
    the helper qualifiers differ.  This module holds the shared parts:
    the emission context, the expression lowering itself, border-handling
    helper sources, and feature discovery. *)

(** Emission context: statements accumulate as expressions are lowered. *)
type ctx

val create_ctx : unit -> ctx

(** [take_stmts ctx] drains accumulated statements in program order. *)
val take_stmts : ctx -> Cuda_ast.stmt list

(** [emit ctx stmt] appends a statement. *)
val emit : ctx -> Cuda_ast.stmt -> unit

(** [sanitize name] maps an IR name to a C identifier. *)
val sanitize : string -> string

(** Scalar precision of lowered code: the buffer element type, the
    per-pixel arithmetic, literals and temporaries all follow it.
    [Single] is [float] everywhere (the CUDA the paper's toolchain
    generates); [Double] is [double] everywhere, matching the float64
    reference interpreter bit-for-bit in every operation and every
    inter-kernel store. *)
type precision = Single | Double

(** [scalar_ctype prec] is ["float"] or ["double"]. *)
val scalar_ctype : precision -> string

(** [lower ?prec ?bounded ctx ~vars ~cx ~cy e] lowers [e] at C
    coordinate expressions [(cx, cy)] with [vars] binding IR variables
    to C identifiers; auxiliary declarations go through [ctx].  [prec]
    (default [Single]) selects the arithmetic width.  [bounded]
    (default [true]) records that [(cx, cy)] is known inside the
    iteration space — kernel launches and tile loops guarantee it —
    letting zero-offset reads skip their border remap; shifts clear it,
    index exchanges restore it. *)
val lower :
  ?prec:precision ->
  ?bounded:bool ->
  ctx ->
  vars:(string * string) list ->
  cx:Cuda_ast.expr ->
  cy:Cuda_ast.expr ->
  Kfuse_ir.Expr.t ->
  Cuda_ast.expr

(** Features of a pipeline that require emitted helpers. *)
type features = {
  read_modes : Kfuse_image.Border.mode list;  (** border readers used *)
  exchange_modes : Kfuse_image.Border.mode list;  (** index-exchange remappers *)
  atomics : [ `Min | `Max ] list;  (** float atomic reductions (CUDA only) *)
}

(** [used_features p] scans every kernel body. *)
val used_features : Kfuse_ir.Pipeline.t -> features

(** [helper_sources ~device_qualifier ?prec features] renders the
    helper function definitions needed by [features]; [device_qualifier]
    is prepended to each (e.g. ["__device__ __forceinline__"] for CUDA
    or ["static inline"] for C).  [prec] (default [Single]) selects the
    buffer element and return type of the border readers. *)
val helper_sources : device_qualifier:string -> ?prec:precision -> features -> string list

(** [atomic_helper_sources features] renders the CUDA float-atomic
    helpers (empty unless reductions are present). *)
val atomic_helper_sources : features -> string list

(** [kernel_params ?prec pipeline kernel] is the shared C parameter
    list: output, inputs, extents, scalar parameters.  Buffer and
    scalar-parameter types follow [prec] (default [Single]). *)
val kernel_params :
  ?prec:precision -> Kfuse_ir.Pipeline.t -> Kfuse_ir.Kernel.t -> Cuda_ast.param list

(** [func_name pipeline kernel] is ["<pipeline>_<kernel>"]. *)
val func_name : Kfuse_ir.Pipeline.t -> Kfuse_ir.Kernel.t -> string

(** [scalar_args pipeline kernel] is the scalar-parameter argument names
    (["p_<name>"]) the kernel's body actually uses, in declaration
    order. *)
val scalar_args : Kfuse_ir.Pipeline.t -> Kfuse_ir.Kernel.t -> string list
