module Iset = Kfuse_util.Iset
module Digraph = Kfuse_graph.Digraph
module Pipeline = Kfuse_ir.Pipeline
module Kernel = Kfuse_ir.Kernel
module Cost = Kfuse_ir.Cost

type scenario =
  | Illegal of Legality.reason
  | Point_based
  | Point_to_local
  | Local_to_local

type edge_report = {
  src : int;
  dst : int;
  image : string;
  scenario : scenario;
  delta : float;
  phi : float;
  weight : float;
}

let delta_reg (config : Config.t) is = is *. config.tg
let delta_shared (config : Config.t) is = is *. config.tg /. config.ts

let grown_mask_area ~sz_src ~sz_dst =
  let isqrt n =
    let r = int_of_float (Float.sqrt (float_of_int n)) in
    if (r + 1) * (r + 1) <= n then r + 1 else r
  in
  let side = isqrt sz_dst + (isqrt sz_src / 2 * 2) in
  side * side

let is_ks (config : Config.t) (p : Pipeline.t) u =
  let k = Pipeline.kernel p u in
  Config.is_of config p *. float_of_int (List.length k.Kernel.inputs)

let require_edge (p : Pipeline.t) u v =
  if not (Digraph.mem_edge (Pipeline.dag p) u v) then
    invalid_arg (Printf.sprintf "Benefit: (%d, %d) is not a pipeline edge" u v)

let scenario config (p : Pipeline.t) u v =
  require_edge p u v;
  match Legality.check config p (Iset.of_list [ u; v ]) with
  | Error r -> Illegal r
  | Ok () -> (
    let ks = Pipeline.kernel p u and kd = Pipeline.kernel p v in
    match (Kernel.pattern ks, Kernel.pattern kd) with
    | _, Kernel.Point -> Point_based
    | Kernel.Point, Kernel.Local _ -> Point_to_local
    | Kernel.Local _, Kernel.Local _ -> Local_to_local
    | Kernel.Global, _ | _, Kernel.Global ->
      (* Unreachable: pairs containing a global kernel fail legality. *)
      assert false)

let edge_report config (p : Pipeline.t) u v =
  let image = Pipeline.edge_image p u v in
  let sc = scenario config p u v in
  let is_ie = Config.is_of config p in
  let cost_op_ks =
    Cost.cost_op ~c_alu:config.Config.c_alu ~c_sfu:config.Config.c_sfu
      (Cost.kernel_op_counts (Pipeline.kernel p u))
  in
  let delta, phi =
    match sc with
    | Illegal _ -> (0.0, 0.0)
    | Point_based -> (delta_reg config is_ie, 0.0)
    | Point_to_local ->
      let sz_kd = Kernel.mask_area (Pipeline.kernel p v) in
      (delta_reg config is_ie, cost_op_ks *. is_ks config p u *. float_of_int sz_kd)
    | Local_to_local ->
      let sz_ks = Kernel.mask_area (Pipeline.kernel p u) in
      let sz_kd = Kernel.mask_area (Pipeline.kernel p v) in
      let g = grown_mask_area ~sz_src:sz_ks ~sz_dst:sz_kd in
      (delta_shared config is_ie, cost_op_ks *. is_ks config p u *. float_of_int g)
  in
  let weight =
    match sc with
    | Illegal _ -> config.Config.epsilon
    | Point_based | Point_to_local | Local_to_local ->
      Float.max (delta -. phi +. config.Config.gamma) config.Config.epsilon
  in
  { src = u; dst = v; image; scenario = sc; delta; phi; weight }

let edge_weight config p u v = (edge_report config p u v).weight

let all_edges ?(pool = Kfuse_util.Pool.serial) config p =
  (* Each edge's report is a pure function of the (immutable) pipeline,
     so the reports can be scored on any domain; map_list preserves the
     (src, dst) order of [Digraph.edges]. *)
  Digraph.edges (Pipeline.dag p)
  |> Kfuse_util.Pool.map_list pool (fun (u, v) -> edge_report config p u v)

let scenario_to_string = function
  | Illegal _ -> "illegal"
  | Point_based -> "point-based"
  | Point_to_local -> "point-to-local"
  | Local_to_local -> "local-to-local"

let pp_report ppf r =
  Format.fprintf ppf "%d -> %d (%s): %s, delta=%.3f phi=%.3f w=%.3f" r.src r.dst
    r.image (scenario_to_string r.scenario) r.delta r.phi r.weight
