type zone = Interior | Halo | Exterior

let classify ~width ~height ~radius x y =
  if radius < 0 then invalid_arg "Region.classify: negative radius";
  if width <= 0 || height <= 0 then invalid_arg "Region.classify: empty extent";
  if x < 0 || x >= width || y < 0 || y >= height then Exterior
  else if
    x >= radius && x < width - radius && y >= radius && y < height - radius
  then Interior
  else Halo

let interior_width ~image_width ~mask_width =
  max 0 (image_width - ((mask_width / 2) * 2))

let fused_radius radii = List.fold_left ( + ) 0 radii

let interior_count ~width ~height ~radius =
  let w = max 0 (width - (2 * radius)) in
  let h = max 0 (height - (2 * radius)) in
  w * h

let halo_count ~width ~height ~radius =
  (width * height) - interior_count ~width ~height ~radius

let zone_equal a b =
  match (a, b) with
  | Interior, Interior | Halo, Halo | Exterior, Exterior -> true
  | (Interior | Halo | Exterior), _ -> false

let pp_zone ppf z =
  Format.pp_print_string ppf
    (match z with Interior -> "interior" | Halo -> "halo" | Exterior -> "exterior")
