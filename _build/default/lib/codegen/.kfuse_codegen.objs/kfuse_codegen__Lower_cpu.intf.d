lib/codegen/lower_cpu.mli: Cuda_ast Kfuse_ir
