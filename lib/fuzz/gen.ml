module Rng = Kfuse_util.Rng
module Iset = Kfuse_util.Iset
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Border = Kfuse_image.Border
module Mask = Kfuse_image.Mask
module Digraph = Kfuse_graph.Digraph

let pick rng arr = arr.(Rng.int rng (Array.length arr))

(* Border modes a generated tap may use.  Undefined is excluded: the
   interpreter (rightly) refuses Undefined accesses that leave the
   image, and the eval oracles run kernels over the full extent. *)
let tap_borders = [| Border.Mirror; Border.Repeat; Border.Constant 0.0; Border.Constant 1.0 |]

let named_masks =
  [| Mask.gaussian_3x3; Mask.gaussian_5x5; Mask.sobel_x; Mask.sobel_y; Mask.mean 3 |]

(* Constants and stencil weights are quarter-integers: short to unparse,
   exactly representable, and slow to overflow under a 10-deep chain of
   adds and muls. *)
let quarter rng lo hi = float_of_int (lo + Rng.int rng (hi - lo + 1)) *. 0.25

let nonzero_quarter rng =
  let rec go () =
    let w = quarter rng (-4) 4 in
    if Float.equal w 0.0 then go () else w
  in
  go ()

(* Source selection with a recency bias, so late kernels usually consume
   recent ones (long chains) but sometimes reach back (fan-out, diamonds,
   shared inputs). *)
let pick_src rng avail =
  let n = List.length avail in
  let i = if n > 3 && Rng.bool rng then n - 1 - Rng.int rng 3 else Rng.int rng n in
  List.nth avail i

(* A point expression: every tap at offset zero (Clamp border, the DSL
   default — a zero-offset border is unobservable anyway). *)
let rec point_expr rng ~params ~avail depth =
  if depth <= 0 || Rng.int rng 5 = 0 then point_leaf rng ~params ~avail
  else
    let sub () = point_expr rng ~params ~avail (depth - 1) in
    match Rng.int rng 10 with
    | 0 | 1 ->
      let a = sub () in
      Expr.(a + sub ())
    | 2 ->
      let a = sub () in
      Expr.(a - sub ())
    | 3 ->
      let a = sub () in
      Expr.(a * sub ())
    | 4 ->
      let a = sub () in
      Expr.min a (sub ())
    | 5 ->
      let a = sub () in
      Expr.max a (sub ())
    | 6 -> Expr.neg (sub ())
    | 7 -> (
      match Rng.int rng 4 with
      | 0 -> Expr.abs (sub ())
      | 1 -> Expr.sin (sub ())
      | 2 -> Expr.cos (sub ())
      | _ -> Expr.floor (sub ()))
    | 8 -> Expr.sqrt (Expr.abs (sub ()))
    | _ -> Expr.pow (sub ()) (Expr.const 2.0)

and point_leaf rng ~params ~avail =
  match Rng.int rng 4 with
  | 0 | 1 -> Expr.input (pick_src rng avail)
  | 2 -> Expr.const (quarter rng (-8) 8)
  | _ ->
    if params <> [] then Expr.param (pick rng (Array.of_list params))
    else Expr.input (pick_src rng avail)

(* A hand-rolled stencil: 2-5 distinct taps in [-2, 2]^2, at least one
   off-center, each with its own weight.  One-sided tap sets (all
   offsets in a half-plane) arise often — those are the asymmetric
   masks that stress the Eq. 9 footprint/growth computations. *)
let stencil_expr rng ~avail =
  let src = pick_src rng avail in
  let border = pick rng tap_borders in
  let n_taps = 2 + Rng.int rng 4 in
  let rec taps n acc =
    if n = 0 then acc
    else
      let dx = Rng.int rng 5 - 2 and dy = Rng.int rng 5 - 2 in
      if List.mem_assoc (dx, dy) acc then taps n acc
      else taps (n - 1) (((dx, dy), nonzero_quarter rng) :: acc)
  in
  let off = ((1 + Rng.int rng 2) * (if Rng.bool rng then 1 else -1), Rng.int rng 5 - 2) in
  let taps = taps (n_taps - 1) [ (off, nonzero_quarter rng) ] in
  List.fold_left
    (fun acc ((dx, dy), w) ->
      let b = if dx = 0 && dy = 0 then Border.Clamp else border in
      let tap = Expr.(const w * input ~border:b ~dx ~dy src) in
      match acc with None -> Some tap | Some e -> Some Expr.(e + tap))
    None taps
  |> Option.get

let body_expr rng ~params ~avail =
  match Rng.int rng 10 with
  | 0 | 1 | 2 -> point_expr rng ~params ~avail (2 + Rng.int rng 2)
  | 3 | 4 ->
    let border = if Rng.bool rng then Border.Clamp else pick rng tap_borders in
    Expr.conv ~border (pick rng named_masks) (pick_src rng avail)
  | 5 | 6 -> stencil_expr rng ~avail
  | 7 ->
    let sub () = point_expr rng ~params ~avail 2 in
    Expr.select Expr.Lt (sub ()) (sub ()) (sub ()) (sub ())
  | 8 ->
    (* Explicit reuse through a let: exercises CSE and Let handling in
       every downstream pass. *)
    let v = "t0" in
    let value = point_expr rng ~params ~avail 2 in
    Expr.(let_ v value (var v * (var v + const (quarter rng (-4) 4))))
  | _ ->
    let a = stencil_expr rng ~avail in
    let b = point_expr rng ~params ~avail 2 in
    Expr.(a + b)

let case ?(max_kernels = 10) ~seed index =
  if max_kernels < 2 then invalid_arg "Gen.case: max_kernels must be >= 2";
  let rng = Rng.create ((seed * 1_000_003) lxor index) in
  let width = 8 + Rng.int rng 9 in
  let height = 6 + Rng.int rng 8 in
  (* ~1 in 4 cases is a temporal stream: inputs named by the streaming
     convention ("frame" current, "prev"/"prevN" lagged — see
     {!Kfuse_ir.Temporal}).  Names are all that distinguishes a temporal
     pipeline, so every other oracle treats them as plain inputs; the
     stream oracle windows them across a multi-frame push sequence. *)
  let temporal_depth = if Rng.int rng 4 = 0 then 1 + Rng.int rng 2 else 0 in
  let inputs =
    if temporal_depth > 0 then
      "frame"
      :: List.init temporal_depth (fun i ->
             if i = 0 then "prev" else Printf.sprintf "prev%d" (i + 1))
    else
      let n_inputs = 1 + Rng.int rng 3 in
      List.init n_inputs (Printf.sprintf "in%d")
  in
  let params =
    List.init (Rng.int rng 3) (fun i -> (Printf.sprintf "p%d" i, quarter rng 1 8))
  in
  let param_names = List.map fst params in
  let n = 2 + Rng.int rng (max_kernels - 1) in
  let with_reduce = n >= 3 && Rng.int rng 5 = 0 in
  let rec build i avail acc =
    if i >= n then List.rev acc
    else
      let name = Printf.sprintf "k%d" i in
      let k =
        if with_reduce && i = n - 1 then begin
          (* A global reduction sink.  The seed must be the DSL default
             for its operator so the corpus can persist the pipeline. *)
          let arg = point_expr rng ~params:param_names ~avail (1 + Rng.int rng 2) in
          let arg =
            if Expr.images arg = [] then Expr.(arg + input (pick_src rng avail)) else arg
          in
          let init, combine =
            match Rng.int rng 3 with
            | 0 -> (0.0, Expr.Add)
            | 1 -> (Float.infinity, Expr.Min)
            | _ -> (Float.neg_infinity, Expr.Max)
          in
          Kernel.reduce ~name ~inputs:(Expr.images arg) ~init ~combine arg
        end
        else begin
          let body = body_expr rng ~params:param_names ~avail in
          let body =
            if Expr.images body = [] then Expr.(body + input (pick_src rng avail))
            else body
          in
          Kernel.map ~name ~inputs:(Expr.images body) body
        end
      in
      build (i + 1) (avail @ [ name ]) (k :: acc)
  in
  let kernels = build 0 inputs [] in
  Pipeline.create
    ~name:(Printf.sprintf "fuzz_%d_%d" seed index)
    ~width ~height ~params ~inputs kernels

(* ---- derived features (for the coverage summary) ---- *)

type features = {
  kernels : int;
  inputs : int;
  conv : bool;
  asymmetric : bool;
  select : bool;
  let_reuse : bool;
  reduce : bool;
  param : bool;
  fanout : bool;
  diamond : bool;
  border_kinds : int;
  temporal : bool;
}

let rec iter_expr f e =
  f e;
  match e with
  | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ -> ()
  | Expr.Let { value; body; _ } ->
    iter_expr f value;
    iter_expr f body
  | Expr.Unop (_, a) -> iter_expr f a
  | Expr.Binop (_, a, b) ->
    iter_expr f a;
    iter_expr f b
  | Expr.Select { lhs; rhs; if_true; if_false; _ } ->
    List.iter (iter_expr f) [ lhs; rhs; if_true; if_false ]
  | Expr.Shift { body; _ } -> iter_expr f body

let kernel_exprs (k : Kernel.t) =
  match k.Kernel.op with Kernel.Map e -> [ e ] | Kernel.Reduce { arg; _ } -> [ arg ]

(* A kernel reads [img] asymmetrically when its tap set on [img] is not
   its own negation — the case where the Eq. 9 grown-mask computation
   must not assume a centered square. *)
let asymmetric_taps (k : Kernel.t) =
  List.exists
    (fun e ->
      let taps = Expr.accesses e in
      let by_img = Hashtbl.create 4 in
      List.iter
        (fun (img, dx, dy) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_img img) in
          Hashtbl.replace by_img img ((dx, dy) :: cur))
        taps;
      Hashtbl.fold
        (fun _ offs acc ->
          acc
          || (List.exists (fun (dx, dy) -> dx <> 0 || dy <> 0) offs
             && List.exists (fun (dx, dy) -> not (List.mem (-dx, -dy) offs)) offs))
        by_img false)
    (kernel_exprs k)

(* Dense odd-square mask: every tap of a (2r+1)^2 window present, all on
   one image — the shape [Expr.conv] produces for named masks (zero
   coefficients excepted, so >= 5 window taps is the pragmatic test). *)
let conv_like (k : Kernel.t) =
  Kernel.is_local k
  && List.exists
       (fun e ->
         List.length
           (List.filter (fun (_, dx, dy) -> dx <> 0 || dy <> 0) (Expr.accesses e))
         >= 5)
       (kernel_exprs k)

let has_diamond p =
  let g = Pipeline.dag p in
  let n = Pipeline.num_kernels p in
  let exception Found in
  try
    for src = 0 to n - 1 do
      (* Path counts from [src], capped at 2; kernels are stored in
         topological order so one ascending sweep suffices. *)
      let count = Array.make n 0 in
      count.(src) <- 1;
      for j = src + 1 to n - 1 do
        let c =
          Iset.fold (fun u acc -> acc + count.(u)) (Digraph.preds g j) 0
        in
        count.(j) <- min c 2;
        if count.(j) >= 2 then raise Found
      done
    done;
    false
  with Found -> true

let features (p : Pipeline.t) =
  let ks = Array.to_list p.Pipeline.kernels in
  let exists_node pred =
    List.exists
      (fun k ->
        List.exists
          (fun e ->
            let found = ref false in
            iter_expr (fun n -> if pred n then found := true) e;
            !found)
          (kernel_exprs k))
      ks
  in
  let borders = Hashtbl.create 4 in
  List.iter
    (fun k ->
      List.iter
        (iter_expr (function
          | Expr.Input { border; _ } -> Hashtbl.replace borders border ()
          | _ -> ()))
        (kernel_exprs k))
    ks;
  {
    kernels = Pipeline.num_kernels p;
    inputs = List.length p.Pipeline.inputs;
    conv = List.exists conv_like ks;
    asymmetric = List.exists asymmetric_taps ks;
    select = exists_node (function Expr.Select _ -> true | _ -> false);
    let_reuse = exists_node (function Expr.Let _ -> true | _ -> false);
    reduce = List.exists Kernel.is_global ks;
    param = exists_node (function Expr.Param _ -> true | _ -> false);
    fanout =
      List.exists
        (fun i -> Iset.cardinal (Pipeline.consumers p i) >= 2)
        (List.init (Pipeline.num_kernels p) Fun.id);
    diamond = has_diamond p;
    border_kinds = Hashtbl.length borders;
    temporal = (Kfuse_ir.Temporal.analyze p).Kfuse_ir.Temporal.temporal <> [];
  }

let feature_flags f =
  [
    ("conv", f.conv);
    ("asymmetric-mask", f.asymmetric);
    ("select", f.select);
    ("let-reuse", f.let_reuse);
    ("reduce-sink", f.reduce);
    ("param", f.param);
    ("fan-out", f.fanout);
    ("diamond", f.diamond);
    ("multi-border", f.border_kinds >= 2);
    ("temporal", f.temporal);
  ]
