bench/exp_fig3.ml: Float Format Kfuse_apps Kfuse_fusion Kfuse_graph Kfuse_ir Kfuse_util List Option Paper_data Printf Runner String
