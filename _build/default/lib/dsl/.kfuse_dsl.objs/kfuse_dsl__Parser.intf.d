lib/dsl/parser.mli: Ast
