bench/main.mli:
