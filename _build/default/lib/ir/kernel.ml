type pattern = Point | Local of int | Global

type op =
  | Map of Expr.t
  | Reduce of { init : float; combine : Expr.binop; arg : Expr.t }

type t = { name : string; inputs : string list; op : op }

let expr_of_op = function Map e -> e | Reduce { arg; _ } -> arg

let create ~name ~inputs op =
  if String.length name = 0 then invalid_arg "Kernel.create: empty name";
  (match Expr.free_vars (expr_of_op op) with
  | [] -> ()
  | v :: _ ->
    invalid_arg (Printf.sprintf "Kernel.create(%s): unbound variable %%%s" name v));
  let read = Expr.images (expr_of_op op) in
  let missing = List.filter (fun i -> not (List.mem i read)) inputs in
  let undeclared = List.filter (fun i -> not (List.mem i inputs)) read in
  (match (missing, undeclared) with
  | [], [] -> ()
  | i :: _, _ ->
    invalid_arg (Printf.sprintf "Kernel.create(%s): declared input %S is never read" name i)
  | _, i :: _ ->
    invalid_arg (Printf.sprintf "Kernel.create(%s): body reads undeclared image %S" name i));
  (match op with
  | Reduce { arg; _ } when Expr.radius arg > 0 ->
    invalid_arg
      (Printf.sprintf "Kernel.create(%s): reduction argument must be a point expression" name)
  | Reduce _ | Map _ -> ());
  { name; inputs; op }

let map ~name ~inputs body = create ~name ~inputs (Map body)

let reduce ~name ~inputs ~init ~combine arg =
  create ~name ~inputs (Reduce { init; combine; arg })

let radius k = match k.op with Map e -> Expr.radius e | Reduce _ -> 0

let pattern k =
  match k.op with
  | Reduce _ -> Global
  | Map e -> ( match Expr.radius e with 0 -> Point | r -> Local r)

let mask_width k = (2 * radius k) + 1
let mask_area k = mask_width k * mask_width k

let body k =
  match k.op with
  | Map e -> e
  | Reduce _ -> invalid_arg (Printf.sprintf "Kernel.body(%s): global kernel" k.name)

let is_point k = match pattern k with Point -> true | Local _ | Global -> false
let is_local k = match pattern k with Local _ -> true | Point | Global -> false
let is_global k = match pattern k with Global -> true | Point | Local _ -> false

let uses_shared_memory k = is_local k

let input_radii k =
  let e = expr_of_op k.op in
  List.map
    (fun img ->
      match Expr.radius_of_image e img with
      | Some r -> (img, r)
      | None -> (img, 0))
    k.inputs

let pattern_to_string = function
  | Point -> "point"
  | Local r -> Printf.sprintf "local(r=%d)" r
  | Global -> "global"

let pp_pattern ppf p = Format.pp_print_string ppf (pattern_to_string p)

let pp ppf k =
  Format.fprintf ppf "@[<v2>kernel %s (%a) : %a@,%a@]" k.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_string)
    k.inputs pp_pattern (pattern k)
    (fun ppf op ->
      match op with
      | Map e -> Expr.pp ppf e
      | Reduce { init; combine; arg } ->
        Format.fprintf ppf "reduce(init=%g, op=%s) %a" init
          (match combine with
          | Expr.Add -> "+"
          | Expr.Sub -> "-"
          | Expr.Mul -> "*"
          | Expr.Div -> "/"
          | Expr.Min -> "min"
          | Expr.Max -> "max"
          | Expr.Pow -> "pow")
          Expr.pp arg)
    k.op
