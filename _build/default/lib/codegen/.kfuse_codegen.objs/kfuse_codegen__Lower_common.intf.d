lib/codegen/lower_common.mli: Cuda_ast Kfuse_image Kfuse_ir
