type t = { size : int; weights : float array }

let of_rows rows =
  let size = List.length rows in
  if size = 0 || size mod 2 = 0 then invalid_arg "Mask.of_rows: size must be odd";
  if List.exists (fun r -> List.length r <> size) rows then
    invalid_arg "Mask.of_rows: mask must be square";
  { size; weights = Array.of_list (List.concat rows) }

let size m = m.size
let radius m = (m.size - 1) / 2
let area m = m.size * m.size

let get m dx dy =
  let r = radius m in
  if abs dx > r || abs dy > r then invalid_arg "Mask.get: offset outside mask";
  m.weights.(((dy + r) * m.size) + (dx + r))

let fold f acc m =
  let r = radius m in
  let acc = ref acc in
  for dy = -r to r do
    for dx = -r to r do
      acc := f !acc dx dy (get m dx dy)
    done
  done;
  !acc

let sum m = Array.fold_left ( +. ) 0.0 m.weights

let gaussian_3x3_unnormalized =
  of_rows [ [ 1.; 2.; 1. ]; [ 2.; 4.; 2. ]; [ 1.; 2.; 1. ] ]

let gaussian_3x3 =
  of_rows
    (List.map (List.map (fun v -> v /. 16.0))
       [ [ 1.; 2.; 1. ]; [ 2.; 4.; 2. ]; [ 1.; 2.; 1. ] ])

let gaussian_5x5 =
  (* Outer product of the binomial row [1 4 6 4 1] with itself, sum 256. *)
  let row = [ 1.; 4.; 6.; 4.; 1. ] in
  of_rows (List.map (fun a -> List.map (fun b -> a *. b /. 256.0) row) row)

let sobel_x = of_rows [ [ -1.; 0.; 1. ]; [ -2.; 0.; 2. ]; [ -1.; 0.; 1. ] ]
let sobel_y = of_rows [ [ -1.; -2.; -1. ]; [ 0.; 0.; 0. ]; [ 1.; 2.; 1. ] ]

let mean n =
  if n <= 0 || n mod 2 = 0 then invalid_arg "Mask.mean: size must be odd";
  let c = 1.0 /. float_of_int (n * n) in
  { size = n; weights = Array.make (n * n) c }

let equal a b = a.size = b.size && Array.for_all2 Float.equal a.weights b.weights

let pp ppf m =
  let r = radius m in
  Format.fprintf ppf "@[<v>";
  for dy = -r to r do
    for dx = -r to r do
      if dx > -r then Format.fprintf ppf " ";
      Format.fprintf ppf "%g" (get m dx dy)
    done;
    if dy < r then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
