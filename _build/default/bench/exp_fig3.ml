(* Experiment fig3: the Harris worked example (Section III-B, Figure 3).
   Regenerates the edge weights of the benefit model and the sequence of
   min-cut iterations, checking both against the paper. *)

module F = Kfuse_fusion
module Ir = Kfuse_ir
module Iset = Kfuse_util.Iset

let run () =
  print_endline "=== fig3: Harris corner detector, weights and min-cut trace ===";
  let p = Kfuse_apps.Harris.pipeline () in
  let config = Runner.config in
  let name i = (Ir.Pipeline.kernel p i).Ir.Kernel.name in
  print_endline "edge weights (paper: 328 / 328 / 256 on the legal edges, eps elsewhere):";
  let ok = ref true in
  List.iter
    (fun (r : F.Benefit.edge_report) ->
      let expected =
        List.assoc_opt (name r.F.Benefit.src, name r.F.Benefit.dst) Paper_data.fig3_weights
      in
      let mark =
        match expected with
        | Some w when Float.abs (w -. r.F.Benefit.weight) < 1e-6 -> "matches paper"
        | Some w -> ok := false; Printf.sprintf "MISMATCH (paper %.0f)" w
        | None ->
          if Float.abs (r.F.Benefit.weight -. config.F.Config.epsilon) < 1e-9 then
            "eps (illegal), as in paper"
          else begin
            ok := false;
            "MISMATCH (paper expects eps)"
          end
      in
      Printf.printf "  %-4s -> %-4s  %-15s w=%8.3f  [%s]\n" (name r.F.Benefit.src)
        (name r.F.Benefit.dst)
        (F.Benefit.scenario_to_string r.F.Benefit.scenario)
        r.F.Benefit.weight mark)
    (F.Benefit.all_edges config p);
  let result = F.Mincut_fusion.run config p in
  print_endline "recursive min-cut trace (Figures 3a-3f):";
  List.iter
    (fun s -> Format.printf "  %a@." (F.Mincut_fusion.pp_step p) s)
    result.F.Mincut_fusion.steps;
  let expected =
    List.map
      (fun group ->
        Iset.of_list (List.map (fun n -> Option.get (Ir.Pipeline.index_of p n)) group))
      Paper_data.fig3_partition
  in
  let match_partition =
    Kfuse_graph.Partition.equal expected result.F.Mincut_fusion.partition
  in
  if not match_partition then ok := false;
  Printf.printf "final partition: ";
  List.iter
    (fun b ->
      Printf.printf "{%s} " (String.concat "," (List.map name (Iset.elements b))))
    result.F.Mincut_fusion.partition;
  Printf.printf "\nobjective beta = %.3f (paper: 912 = 328 + 328 + 256)\n"
    result.F.Mincut_fusion.objective;
  Printf.printf "fig3 reproduction: %s\n\n" (if !ok && match_partition then "PASS" else "FAIL")
