lib/core/mincut_fusion.mli: Benefit Config Format Kfuse_graph Kfuse_ir Kfuse_util Legality
