(** CPU (C + OpenMP) backend.

    The paper's conclusion lists CPU targets as future work; this backend
    provides it.  Each kernel lowers to a plain C function that iterates
    the image under an OpenMP [parallel for] (collapsed over both loop
    dimensions); global reductions use OpenMP reduction clauses instead
    of the CUDA backend's float atomics.  Expression lowering — including
    fusion's registers and index exchange — is shared with the CUDA
    backend via {!Lower_common}. *)

(** [kernel_func ?tile pipeline kernel] lowers one kernel to a C function
    named [<pipeline>_<kernel>].  With [tile = (tx, ty)] the iteration
    space is blocked into [tx x ty] tiles (classic loop tiling — the
    locality transform Figure 1 of the paper places alongside fusion):
    the OpenMP [parallel for] distributes tiles, and the pixel loops run
    within one tile so a stencil's working set stays cache-resident.
    Reductions are never tiled.

    [prec] (default {!Lower_common.Single}) selects the scalar type of
    buffers and per-pixel arithmetic alike.  {!Lower_common.Double}
    makes the compiled kernels agree with the float64 reference
    interpreter in every operation and inter-kernel store — the native
    execution backend uses it so its interpreter-vs-native tolerance
    gate measures only boundary rounding, not accumulated float32
    drift.
    @raise Invalid_argument on nonpositive tile extents. *)
val kernel_func :
  ?tile:int * int ->
  ?prec:Lower_common.precision ->
  Kfuse_ir.Pipeline.t ->
  Kfuse_ir.Kernel.t ->
  Cuda_ast.func

(** [emit_pipeline ?tile ?prec pipeline] renders a complete [.c]
    translation unit: a [kf_scalar] typedef fixing the scalar type,
    helpers, one function per kernel, and a [run_<name>] driver
    allocating intermediates with an abort-on-OOM [malloc] wrapper. *)
val emit_pipeline :
  ?tile:int * int -> ?prec:Lower_common.precision -> Kfuse_ir.Pipeline.t -> string
