type summary = {
  n : int;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
  mean : float;
}

let percentile p sorted =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let summarize samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.summarize: empty array";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  {
    n;
    min = sorted.(0);
    p25 = percentile 25.0 sorted;
    median = percentile 50.0 sorted;
    p75 = percentile 75.0 sorted;
    max = sorted.(n - 1);
    mean = mean samples;
  }

let geomean xs =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty list"
  | _ ->
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: nonpositive element";
          acc +. log x)
        0.0 xs
    in
    exp (sum_logs /. float_of_int (List.length xs))

(* ---- Reservoir sampling (algorithm R) ---- *)

type reservoir = {
  capacity : int;
  sample : float array;  (* first [filled] slots are live *)
  mutable filled : int;
  mutable seen : int;
  mutable sum : float;
  mutable rmin : float;
  mutable rmax : float;
  rng : Random.State.t;
}

let reservoir ?(seed = 0x5157) capacity =
  if capacity < 1 then invalid_arg "Stats.reservoir: capacity must be >= 1";
  {
    capacity;
    sample = Array.make capacity 0.0;
    filled = 0;
    seen = 0;
    sum = 0.0;
    rmin = infinity;
    rmax = neg_infinity;
    rng = Random.State.make [| seed; capacity |];
  }

let add r x =
  r.seen <- r.seen + 1;
  r.sum <- r.sum +. x;
  if x < r.rmin then r.rmin <- x;
  if x > r.rmax then r.rmax <- x;
  if r.filled < r.capacity then begin
    r.sample.(r.filled) <- x;
    r.filled <- r.filled + 1
  end
  else begin
    (* Replace a random slot with probability capacity/seen: every value
       observed so far is in the sample with equal probability. *)
    let j = Random.State.int r.rng r.seen in
    if j < r.capacity then r.sample.(j) <- x
  end

let count r = r.seen

type quantiles = {
  samples : int;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  q_min : float;
  q_max : float;
  q_mean : float;
}

let quantiles r =
  if r.filled = 0 then None
  else begin
    let sorted = Array.sub r.sample 0 r.filled in
    Array.sort Float.compare sorted;
    Some
      {
        samples = r.seen;
        p50 = percentile 50.0 sorted;
        p90 = percentile 90.0 sorted;
        p95 = percentile 95.0 sorted;
        p99 = percentile 99.0 sorted;
        q_min = r.rmin;
        q_max = r.rmax;
        q_mean = r.sum /. float_of_int r.seen;
      }
  end

let pp_quantiles ppf q =
  Format.fprintf ppf "n=%d p50=%.4f p90=%.4f p95=%.4f p99=%.4f min=%.4f max=%.4f"
    q.samples q.p50 q.p90 q.p95 q.p99 q.q_min q.q_max

let pp_summary ppf s =
  Format.fprintf ppf "n=%d min=%.4f p25=%.4f med=%.4f p75=%.4f max=%.4f" s.n
    s.min s.p25 s.median s.p75 s.max
